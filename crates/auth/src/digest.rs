//! Stable 64-bit digests of signable payloads.
//!
//! Digests are FNV-1a over a canonical byte encoding. They are stable across
//! runs and platforms (no `Hash`/`RandomState` involvement), which keeps
//! simulated runs reproducible.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the FNV-1a digest of a byte slice.
///
/// # Examples
///
/// ```
/// use fastreg_auth::digest::fnv1a;
///
/// assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental FNV-1a digest writer for composite payloads.
///
/// # Examples
///
/// ```
/// use fastreg_auth::digest::DigestWriter;
///
/// let mut w = DigestWriter::new();
/// w.write_u64(7);
/// w.write_bytes(b"value");
/// let d1 = w.finish();
///
/// let mut w2 = DigestWriter::new();
/// w2.write_u64(7);
/// w2.write_bytes(b"value");
/// assert_eq!(d1, w2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct DigestWriter {
    state: u64,
}

impl DigestWriter {
    /// Creates a fresh writer.
    pub fn new() -> Self {
        DigestWriter { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` in little-endian encoding, length-prefixed by nothing
    /// (fixed width, so unambiguous).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a length-prefixed byte string (unambiguous for variable-width
    /// payloads).
    pub fn write_len_prefixed(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write_bytes(bytes);
    }

    /// Returns the digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for DigestWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Types with a canonical, stable 64-bit digest, suitable for signing.
pub trait Digestible {
    /// The canonical digest of `self`.
    fn digest(&self) -> u64;
}

impl Digestible for u64 {
    fn digest(&self) -> u64 {
        fnv1a(&self.to_le_bytes())
    }
}

impl Digestible for u32 {
    fn digest(&self) -> u64 {
        (*self as u64).digest()
    }
}

impl Digestible for &[u8] {
    fn digest(&self) -> u64 {
        let mut w = DigestWriter::new();
        w.write_len_prefixed(self);
        w.finish()
    }
}

impl Digestible for &str {
    fn digest(&self) -> u64 {
        self.as_bytes().digest()
    }
}

impl Digestible for String {
    fn digest(&self) -> u64 {
        self.as_str().digest()
    }
}

impl<A: Digestible, B: Digestible> Digestible for (A, B) {
    fn digest(&self) -> u64 {
        let mut w = DigestWriter::new();
        w.write_u64(self.0.digest());
        w.write_u64(self.1.digest());
        w.finish()
    }
}

impl<A: Digestible, B: Digestible, C: Digestible> Digestible for (A, B, C) {
    fn digest(&self) -> u64 {
        let mut w = DigestWriter::new();
        w.write_u64(self.0.digest());
        w.write_u64(self.1.digest());
        w.write_u64(self.2.digest());
        w.finish()
    }
}

impl<T: Digestible> Digestible for Option<T> {
    fn digest(&self) -> u64 {
        let mut w = DigestWriter::new();
        match self {
            None => w.write_u64(0),
            Some(v) => {
                w.write_u64(1);
                w.write_u64(v.digest());
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Known FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_equals_oneshot() {
        let mut w = DigestWriter::new();
        w.write_bytes(b"hello");
        assert_eq!(w.finish(), fnv1a(b"hello"));
    }

    #[test]
    fn len_prefix_disambiguates_concatenation() {
        let mut a = DigestWriter::new();
        a.write_len_prefixed(b"ab");
        a.write_len_prefixed(b"c");
        let mut b = DigestWriter::new();
        b.write_len_prefixed(b"a");
        b.write_len_prefixed(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn u64_digest_differs_by_value() {
        assert_ne!(1u64.digest(), 2u64.digest());
        assert_eq!(5u64.digest(), 5u64.digest());
    }

    #[test]
    fn tuple_digest_is_order_sensitive() {
        assert_ne!((1u64, 2u64).digest(), (2u64, 1u64).digest());
        assert_eq!((1u64, 2u64).digest(), (1u64, 2u64).digest());
    }

    #[test]
    fn triple_digest_composes() {
        let d = (1u64, 2u64, 3u64).digest();
        assert_ne!(d, (1u64, 2u64).digest());
        assert_eq!(d, (1u64, 2u64, 3u64).digest());
    }

    #[test]
    fn option_digest_distinguishes_none_some() {
        assert_ne!(None::<u64>.digest(), Some(0u64).digest());
        assert_ne!(Some(1u64).digest(), Some(2u64).digest());
    }

    #[test]
    fn str_and_string_agree() {
        assert_eq!("abc".digest(), "abc".to_string().digest());
    }

    #[test]
    fn u32_promotes_to_u64() {
        assert_eq!(7u32.digest(), 7u64.digest());
    }
}
