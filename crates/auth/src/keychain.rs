//! Key issuance, signing handles, and verification.

use std::fmt;
use std::sync::Arc;

/// Identifies a key issued by a [`Keychain`].
///
/// Key ids are public information: they name *who* allegedly signed a
/// payload; verification decides whether the claim is genuine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(u32);

impl KeyId {
    /// The dense index of the key within its keychain.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key{}", self.0)
    }
}

/// A signature tag over a payload digest.
///
/// Tag bits are never meaningful to callers; only [`Verifier::verify`] can
/// interpret them.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    key: KeyId,
    tag: u64,
}

impl Signature {
    /// The key this signature claims to be from.
    pub fn key(&self) -> KeyId {
        self.key
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig({:?}, {:016x})", self.key, self.tag)
    }
}

/// The authority that issues signing keys for one simulated system.
///
/// Create one keychain per cluster, [`issue`](Keychain::issue) a handle to
/// the writer, and distribute [`Verifier`]s to everyone.
pub struct Keychain {
    secrets: Vec<u64>,
    seed: u64,
}

impl Keychain {
    /// Creates a keychain whose secrets are derived from `seed`.
    ///
    /// Different seeds yield different, mutually unverifiable key universes.
    pub fn new(seed: u64) -> Self {
        Keychain {
            secrets: Vec::new(),
            seed,
        }
    }

    /// Issues a fresh key and returns its signing handle.
    ///
    /// The handle is the *only* way to produce valid signatures under the
    /// new key; hand it to exactly one (honest) process.
    pub fn issue(&mut self) -> SignerHandle {
        let index = self.secrets.len() as u32;
        let secret = splitmix(self.seed ^ splitmix(index as u64 + 0x9e37));
        self.secrets.push(secret);
        SignerHandle {
            key: KeyId(index),
            secret,
        }
    }

    /// Returns a verifier for all keys issued so far.
    ///
    /// Issue every key *before* taking verifiers; later keys are unknown to
    /// earlier verifiers.
    pub fn verifier(&self) -> Verifier {
        Verifier {
            secrets: Arc::new(self.secrets.clone()),
        }
    }

    /// Number of keys issued.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// Returns `true` if no keys have been issued.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }
}

impl fmt::Debug for Keychain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secrets.
        write!(f, "Keychain({} keys)", self.secrets.len())
    }
}

/// The capability to sign under one key.
///
/// Possession of a `SignerHandle` *is* the secret key; do not hand it to
/// Byzantine strategies.
pub struct SignerHandle {
    key: KeyId,
    secret: u64,
}

impl SignerHandle {
    /// The public id of this handle's key.
    pub fn key(&self) -> KeyId {
        self.key
    }

    /// Signs a payload digest.
    pub fn sign(&self, payload_digest: u64) -> Signature {
        Signature {
            key: self.key,
            tag: tag_for(self.secret, payload_digest),
        }
    }
}

impl fmt::Debug for SignerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "SignerHandle({:?})", self.key)
    }
}

/// Shared verification capability for all keys of one keychain.
///
/// Cheap to clone (`Arc` inside); safe to give to every actor including
/// Byzantine ones — it exposes no way to produce signatures.
#[derive(Clone)]
pub struct Verifier {
    secrets: Arc<Vec<u64>>,
}

impl Verifier {
    /// Returns `true` iff `sig` is a genuine signature of `payload_digest`
    /// under `key`.
    pub fn verify(&self, key: KeyId, payload_digest: u64, sig: &Signature) -> bool {
        if sig.key != key {
            return false;
        }
        match self.secrets.get(key.0 as usize) {
            Some(&secret) => sig.tag == tag_for(secret, payload_digest),
            None => false,
        }
    }
}

impl fmt::Debug for Verifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Verifier({} keys)", self.secrets.len())
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn tag_for(secret: u64, payload_digest: u64) -> u64 {
    splitmix(secret ^ splitmix(payload_digest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut c = Keychain::new(0);
        let h = c.issue();
        let v = c.verifier();
        let sig = h.sign(123);
        assert!(v.verify(h.key(), 123, &sig));
    }

    #[test]
    fn wrong_digest_fails() {
        let mut c = Keychain::new(0);
        let h = c.issue();
        let v = c.verifier();
        let sig = h.sign(123);
        assert!(!v.verify(h.key(), 124, &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let mut c = Keychain::new(0);
        let h1 = c.issue();
        let h2 = c.issue();
        let v = c.verifier();
        let sig = h1.sign(123);
        assert!(!v.verify(h2.key(), 123, &sig));
    }

    #[test]
    fn unknown_key_fails() {
        let mut c = Keychain::new(0);
        let h = c.issue();
        let v = c.verifier();
        let mut c2 = Keychain::new(0);
        let _ = c2.issue();
        let h_late = c2.issue(); // key index 1, unknown to v
        let sig = h_late.sign(1);
        assert!(!v.verify(h_late.key(), 1, &sig));
        // Sanity: the known key still verifies.
        assert!(v.verify(h.key(), 2, &h.sign(2)));
    }

    #[test]
    fn verifier_is_cheap_to_clone_and_consistent() {
        let mut c = Keychain::new(9);
        let h = c.issue();
        let v1 = c.verifier();
        let v2 = v1.clone();
        let sig = h.sign(7);
        assert!(v1.verify(h.key(), 7, &sig));
        assert!(v2.verify(h.key(), 7, &sig));
    }

    #[test]
    fn distinct_keys_have_distinct_tags() {
        let mut c = Keychain::new(4);
        let h1 = c.issue();
        let h2 = c.issue();
        let s1 = h1.sign(42);
        let s2 = h2.sign(42);
        assert_ne!(s1, s2);
    }

    #[test]
    fn deterministic_across_runs() {
        let make = || {
            let mut c = Keychain::new(77);
            let h = c.issue();
            h.sign(5)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn debug_never_leaks_secrets() {
        let mut c = Keychain::new(0);
        let h = c.issue();
        let v = c.verifier();
        let all = format!("{c:?} {h:?} {v:?}");
        assert!(all.contains("Keychain(1 keys)"));
        assert!(all.contains("SignerHandle(key0)"));
        assert!(all.contains("Verifier(1 keys)"));
    }

    #[test]
    fn keychain_len_tracks_issues() {
        let mut c = Keychain::new(0);
        assert!(c.is_empty());
        c.issue();
        c.issue();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn signature_reports_key() {
        let mut c = Keychain::new(0);
        let h = c.issue();
        assert_eq!(h.sign(0).key(), h.key());
    }
}
