//! # fastreg-auth
//!
//! Simulated digital signatures for the arbitrary-failure protocol of
//! *How Fast can a Distributed Atomic Read be?* (§6).
//!
//! The paper's Byzantine-tolerant algorithm (Fig. 5) has the writer sign
//! each timestamp and relies on exactly two properties:
//!
//! * **Property 1 (Authentication)**: readers can check that a value
//!   returned by a server was in fact written by the writer.
//! * **Property 2 (Unforgeability)**: it is impossible to forge the digital
//!   signature of the writer.
//!
//! The paper uses RSA [Rivest et al. 1978]. Inside a simulation we do not
//! need (or want) real public-key cryptography; we need those two properties
//! to hold *among the simulated processes*. This crate provides them by
//! construction:
//!
//! * Signing requires a [`SignerHandle`], which only the process that was
//!   issued the key holds. Byzantine strategies are handed a [`Verifier`]
//!   but never the writer's handle, so they cannot produce a valid
//!   signature for a timestamp the writer never signed — unforgeability is
//!   enforced by Rust's visibility rules rather than by number theory.
//! * Verification is available to everyone through the [`Verifier`], which
//!   shares no mutable state and can be cloned into every actor —
//!   authentication.
//!
//! Tags are 64-bit keyed digests (a splitmix-style mix of the key secret and
//! the payload digest), so even a strategy that tried to guess tags at
//! random would need ~2⁶⁴ attempts — the in-simulation analogue of
//! computational infeasibility.
//!
//! ## Example
//!
//! ```
//! use fastreg_auth::{Keychain, digest::Digestible};
//!
//! let mut chain = Keychain::new(42);
//! let writer = chain.issue();
//! let verifier = chain.verifier();
//!
//! let ts: u64 = 7;
//! let sig = writer.sign(ts.digest());
//!
//! assert!(verifier.verify(writer.key(), ts.digest(), &sig));
//! assert!(!verifier.verify(writer.key(), 8u64.digest(), &sig)); // wrong payload
//! ```

#![warn(missing_docs)]

pub mod digest;
pub mod keychain;

pub use keychain::{KeyId, Keychain, Signature, SignerHandle, Verifier};

/// A value bundled with a signature over its digest.
///
/// This is the shape that travels in `write`/`readack` messages of the
/// Byzantine protocol: the paper's `ts_σw`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Signed<T> {
    /// The signed value.
    pub value: T,
    /// Signature over `value.digest()`.
    pub signature: Signature,
}

impl<T: digest::Digestible> Signed<T> {
    /// Signs `value` with `signer`.
    pub fn new(value: T, signer: &SignerHandle) -> Self {
        let signature = signer.sign(value.digest());
        Signed { value, signature }
    }

    /// Verifies that `self.value` was signed by `key`.
    pub fn verify(&self, verifier: &Verifier, key: KeyId) -> bool {
        verifier.verify(key, self.value.digest(), &self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_wrapper_roundtrips() {
        let mut chain = Keychain::new(1);
        let h = chain.issue();
        let v = chain.verifier();
        let s = Signed::new(99u64, &h);
        assert!(s.verify(&v, h.key()));
    }

    #[test]
    fn signed_wrapper_rejects_tampered_value() {
        let mut chain = Keychain::new(1);
        let h = chain.issue();
        let v = chain.verifier();
        let mut s = Signed::new(99u64, &h);
        s.value = 100;
        assert!(!s.verify(&v, h.key()));
    }

    #[test]
    fn signed_wrapper_rejects_wrong_signer_claim() {
        let mut chain = Keychain::new(1);
        let writer = chain.issue();
        let other = chain.issue();
        let v = chain.verifier();
        let s = Signed::new(5u64, &other);
        assert!(!s.verify(&v, writer.key()));
        assert!(s.verify(&v, other.key()));
    }

    #[test]
    fn signed_is_cloneable_and_comparable() {
        let mut chain = Keychain::new(3);
        let h = chain.issue();
        let a = Signed::new(1u64, &h);
        let b = a.clone();
        assert_eq!(a, b);
        let c = Signed::new(2u64, &h);
        assert_ne!(a, c);
    }

    #[test]
    fn cross_keychain_signatures_do_not_verify() {
        let mut chain1 = Keychain::new(10);
        let mut chain2 = Keychain::new(11);
        let h1 = chain1.issue();
        let h2 = chain2.issue();
        let v2 = chain2.verifier();
        // Same key index, different chains: chain1's signature must not
        // verify under chain2 (they have different secrets).
        let s = Signed::new(5u64, &h1);
        assert_eq!(h1.key(), h2.key());
        assert!(!s.verify(&v2, h2.key()));
    }
}
