//! Property suite for the store's key → shard routing (and the
//! determinism of everything built on it).
//!
//! The two properties the sharded store leans on:
//!
//! * **stability** — `shard_of` is a pure function of `(key, shard
//!   count)`: identical across router instances, runs, and thread
//!   counts (the mapping is computed on worker threads in production,
//!   so the suite recomputes it through `map_ordered` at several pool
//!   sizes);
//! * **balance** — for uniformly distributed keys no shard carries more
//!   than 2× the mean load, whatever the keyspace shape (random 64-bit
//!   keys, dense sequential ids, or strided ids).

use proptest::prelude::*;

use fastreg_simnet::threaded::map_ordered;
use fastreg_store::router::Router;

proptest! {
    #[test]
    fn mapping_is_in_range(shards in 1u32..64, key in any::<u64>()) {
        let router = Router::new(shards);
        prop_assert!(router.shard_of(key) < shards);
    }

    #[test]
    fn mapping_is_stable_across_instances_and_runs(
        shards in 1u32..64,
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let a = Router::new(shards);
        let b = Router::new(shards);
        for &key in &keys {
            let first = a.shard_of(key);
            prop_assert_eq!(first, b.shard_of(key));
            prop_assert_eq!(first, a.shard_of(key), "repeat calls agree");
        }
    }

    #[test]
    fn mapping_is_identical_at_any_thread_count(
        shards in 1u32..32,
        keys in proptest::collection::vec(any::<u64>(), 1..128),
    ) {
        // Recompute the routing on worker pools of several sizes — the
        // shape the batched frontend uses it in. The mapping must be a
        // pure function of the key, never of the executing thread.
        let reference: Vec<u32> = keys.iter().map(|&k| Router::new(shards).shard_of(k)).collect();
        for threads in [1usize, 2, 4, 8] {
            let mapped = map_ordered(keys.clone(), threads, |_, k| Router::new(shards).shard_of(k));
            prop_assert_eq!(&mapped, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn uniform_keys_balance_within_2x_of_the_mean(
        shards in 1u32..17,
        seed in any::<u64>(),
    ) {
        // ≥ 128 keys per shard keeps the binomial tail far below the 2×
        // line, so this is a real property, not a flaky sample.
        let n_keys = (shards as u64) * 128;
        let mut loads = vec![0u64; shards as usize];
        let router = Router::new(shards);
        // Uniform 64-bit keys derived from a splitmix-style stream.
        let mut state = seed;
        for _ in 0..n_keys {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            loads[router.shard_of(z ^ (z >> 31)) as usize] += 1;
        }
        let mean = n_keys as f64 / shards as f64;
        let max = *loads.iter().max().expect("at least one shard") as f64;
        prop_assert!(
            max <= 2.0 * mean,
            "shard load {} exceeds 2x the mean {} (loads {:?})",
            max, mean, loads
        );
    }

    #[test]
    fn sequential_and_strided_keys_balance_too(
        shards in 2u32..17,
        start in any::<u64>(),
        stride in 1u64..1024,
    ) {
        // The adversarial-but-common keyspaces: dense counters and
        // strided ids. The pre-modulo mixing must spread these as well
        // as random keys — a bare `key % shards` would fail this at
        // every stride that shares a factor with the shard count.
        let n_keys = (shards as u64) * 128;
        let mut loads = vec![0u64; shards as usize];
        let router = Router::new(shards);
        for i in 0..n_keys {
            loads[router.shard_of(start.wrapping_add(i * stride)) as usize] += 1;
        }
        let mean = n_keys as f64 / shards as f64;
        let max = *loads.iter().max().expect("at least one shard") as f64;
        prop_assert!(
            max <= 2.0 * mean,
            "stride {}: shard load {} exceeds 2x the mean {} (loads {:?})",
            stride, max, mean, loads
        );
    }
}

/// End-to-end determinism: the full store pipeline (router → shards →
/// per-key registers) produces byte-identical histories and fingerprints
/// at every thread count, on randomized op streams.
mod store_pipeline {
    use super::*;
    use fastreg::config::ClusterConfig;
    use fastreg::protocols::registry::ProtocolId;
    use fastreg_store::kv::KvOp;
    use fastreg_store::store::StoreBuilder;
    use fastreg_store::StoreChecker;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn pipeline_is_thread_count_independent(
            seed in any::<u64>(),
            raw_ops in proptest::collection::vec(
                (0u64..24, 0u32..4, any::<bool>()), 1..80
            ),
        ) {
            let cfg = ClusterConfig::crash_stop(5, 1, 2).expect("valid");
            let mut value = 0u64;
            let ops: Vec<KvOp> = raw_ops
                .iter()
                .map(|&(key, client, is_put)| {
                    if is_put {
                        value += 1; // distinct values keep histories checkable
                        KvOp::put(client, key, value)
                    } else {
                        KvOp::get(client, key)
                    }
                })
                .collect();
            let run = |threads: usize| {
                let mut store = StoreBuilder::new(cfg)
                    .shards(4)
                    .seed(seed)
                    .backends(vec![ProtocolId::FastCrash, ProtocolId::Abd])
                    .build()
                    .expect("feasible backends");
                for chunk in ops.chunks(16) {
                    store.apply_batch(chunk, threads).expect("no stalls");
                }
                let report = StoreChecker::check(&store);
                prop_assert!(report.is_clean(), "sound backends stay clean");
                let rendered: Vec<String> = report
                    .per_key
                    .iter()
                    .map(|kv| format!("{} {} {}", kv.key, kv.protocol, kv.verdict))
                    .collect();
                Ok((store.fingerprint(), rendered))
            };
            let single = run(1)?;
            for threads in [2usize, 4] {
                prop_assert_eq!(&run(threads)?, &single, "threads = {}", threads);
            }
        }
    }
}
