//! The batched frontend: op-stream coalescing in front of the shards.
//!
//! Production register stores do not settle the network once per
//! operation; they accumulate a window of client operations, group them
//! by destination shard, and dispatch every group at once. The
//! [`BatchedFrontend`] is that window: [`submit`](BatchedFrontend::submit)
//! buffers operations from any number of simulated clients, and a flush
//! (explicit, or automatic when the window fills) routes the buffer and
//! drives the affected shards concurrently via
//! [`ShardedStore::apply_batch`].

use fastreg::harness::{BuildError, Runtime};

use crate::kv::KvOp;
use crate::shard::StoreError;
use crate::store::{BatchStats, ShardedStore};

/// Accumulated frontend counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Operations accepted.
    pub ops: u64,
    /// Flushes executed (auto + explicit, empty flushes excluded).
    pub flushes: u64,
    /// Largest single flush, in ops.
    pub max_flush_ops: u64,
    /// Non-empty per-shard sub-batches dispatched.
    pub shard_batches: u64,
    /// Settle waves run by the shards.
    pub waves: u64,
}

/// A batching window in front of a [`ShardedStore`].
///
/// # Examples
///
/// ```
/// use fastreg::config::ClusterConfig;
/// use fastreg_store::frontend::BatchedFrontend;
/// use fastreg_store::kv::KvOp;
/// use fastreg_store::store::StoreBuilder;
///
/// let cfg = ClusterConfig::crash_stop(5, 1, 2)?;
/// let store = StoreBuilder::new(cfg).shards(4).build()?;
/// let mut fe = BatchedFrontend::new(store, 2 /* threads */, 8 /* window */);
/// for client in 0..6u32 {
///     fe.submit(KvOp::put(0, client as u64, client as u64 + 1))?;
///     fe.submit(KvOp::get(client, client as u64))?;
/// }
/// let (store, stats) = fe.finish()?;
/// assert_eq!(stats.ops, 12);
/// assert_eq!(store.ops_applied(), 12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct BatchedFrontend {
    store: ShardedStore,
    threads: usize,
    window: usize,
    pending: Vec<KvOp>,
    stats: FrontendStats,
}

impl BatchedFrontend {
    /// A frontend over `store`, flushing automatically once `window` ops
    /// are pending and driving shards on `threads` worker threads.
    ///
    /// A zero `window` is treated as 1 (flush per op — the unbatched
    /// degenerate mode, useful as a baseline).
    pub fn new(store: ShardedStore, threads: usize, window: usize) -> Self {
        BatchedFrontend {
            store,
            threads,
            window: window.max(1),
            pending: Vec::new(),
            stats: FrontendStats::default(),
        }
    }

    /// Runtime-aware constructor for callers that thread a
    /// [`Runtime`] selection through the whole stack.
    ///
    /// The frontend's own worker threads are real either way; what the
    /// `runtime` names is the substrate of the *registers underneath*,
    /// and those are simulated per key — the store's determinism
    /// contract depends on it.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnsupportedRuntime`] for anything but
    /// [`Runtime::Simnet`].
    pub fn with_runtime(
        store: ShardedStore,
        threads: usize,
        window: usize,
        runtime: Runtime,
    ) -> Result<Self, BuildError> {
        if runtime != Runtime::Simnet {
            return Err(BuildError::UnsupportedRuntime {
                runtime,
                reason: "the batched frontend fans out simulated shards; \
                         its registers only run on the simnet runtime",
            });
        }
        Ok(BatchedFrontend::new(store, threads, window))
    }

    /// The store behind the frontend (read access — mutate through
    /// operations).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Counters so far.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// Operations buffered but not yet flushed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accepts one operation, flushing if the window is full.
    ///
    /// # Errors
    ///
    /// Propagates a [`StoreError`] from an automatic flush.
    pub fn submit(&mut self, op: KvOp) -> Result<(), StoreError> {
        self.pending.push(op);
        self.stats.ops += 1;
        if self.pending.len() >= self.window {
            self.flush()?;
        }
        Ok(())
    }

    /// Dispatches everything pending (no-op when empty).
    ///
    /// # Errors
    ///
    /// Propagates the store's [`StoreError`] (first stalled shard, in
    /// shard order).
    pub fn flush(&mut self) -> Result<BatchStats, StoreError> {
        if self.pending.is_empty() {
            return Ok(BatchStats::default());
        }
        let ops = std::mem::take(&mut self.pending);
        let batch = self.store.apply_batch(&ops, self.threads)?;
        self.stats.flushes += 1;
        self.stats.max_flush_ops = self.stats.max_flush_ops.max(batch.ops);
        self.stats.shard_batches += batch.shards_hit;
        self.stats.waves += batch.waves;
        Ok(batch)
    }

    /// Flushes the tail and hands the store back with the final
    /// counters.
    ///
    /// # Errors
    ///
    /// Propagates a [`StoreError`] from the final flush.
    pub fn finish(mut self) -> Result<(ShardedStore, FrontendStats), StoreError> {
        self.flush()?;
        Ok((self.store, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastreg::config::ClusterConfig;
    use fastreg::protocols::registry::ProtocolId;

    use crate::store::StoreBuilder;

    fn frontend(window: usize) -> BatchedFrontend {
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        let store = StoreBuilder::new(cfg)
            .shards(4)
            .seed(5)
            .protocol(ProtocolId::FastCrash)
            .build()
            .unwrap();
        BatchedFrontend::new(store, 2, window)
    }

    #[test]
    fn window_fills_trigger_automatic_flushes() {
        let mut fe = frontend(4);
        for i in 0..10u64 {
            fe.submit(KvOp::put(0, i % 3, i + 1)).unwrap();
        }
        // 10 ops, window 4: two auto-flushes, 2 pending.
        assert_eq!(fe.stats().flushes, 2);
        assert_eq!(fe.pending(), 2);
        assert_eq!(fe.store().ops_applied(), 8);
        let (store, stats) = fe.finish().unwrap();
        assert_eq!(stats.flushes, 3);
        assert_eq!(stats.ops, 10);
        assert_eq!(stats.max_flush_ops, 4);
        assert!(stats.shard_batches >= stats.flushes);
        assert_eq!(store.ops_applied(), 10);
    }

    #[test]
    fn explicit_flush_and_empty_flush() {
        let mut fe = frontend(100);
        assert_eq!(fe.flush().unwrap(), BatchStats::default());
        fe.submit(KvOp::put(0, 1, 1)).unwrap();
        fe.submit(KvOp::get(0, 1)).unwrap();
        let batch = fe.flush().unwrap();
        assert_eq!(batch.ops, 2);
        assert_eq!(fe.pending(), 0);
        assert_eq!(fe.stats().flushes, 1);
    }

    #[test]
    fn runtime_aware_constructor_rejects_threads() {
        use crate::store::StoreBuilder;
        use fastreg::config::ClusterConfig;
        use fastreg::harness::Affinity;

        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        let store = || StoreBuilder::new(cfg).shards(2).build().unwrap();
        let requested = Runtime::Threads {
            workers: 4,
            affinity: Affinity::None,
        };
        match BatchedFrontend::with_runtime(store(), 2, 8, requested) {
            Err(BuildError::UnsupportedRuntime { runtime, .. }) => assert_eq!(runtime, requested),
            Err(other) => panic!("expected UnsupportedRuntime, got {other:?}"),
            Ok(_) => panic!("threads must be rejected"),
        }
        // Simnet goes through and behaves exactly like `new`.
        let mut fe = BatchedFrontend::with_runtime(store(), 2, 8, Runtime::Simnet).unwrap();
        fe.submit(KvOp::put(0, 1, 1)).unwrap();
        let (store, stats) = fe.finish().unwrap();
        assert_eq!(stats.ops, 1);
        assert_eq!(store.ops_applied(), 1);
    }

    #[test]
    fn zero_window_degenerates_to_flush_per_op() {
        let mut fe = frontend(0);
        for i in 0..3u64 {
            fe.submit(KvOp::put(0, i, i + 1)).unwrap();
        }
        assert_eq!(fe.stats().flushes, 3);
        assert_eq!(fe.pending(), 0);
    }

    #[test]
    fn batched_and_unbatched_agree_on_results() {
        // Batching changes *when* worlds settle, never per-key outcomes
        // visible to sequential clients: the same single-client op
        // sequence leaves both stores with every op completed and the
        // same per-key final values.

        let ops: Vec<KvOp> = (0..24u64)
            .map(|i| {
                if i % 4 == 0 {
                    KvOp::put(0, i % 6, i + 1)
                } else {
                    KvOp::get(0, i % 6)
                }
            })
            .collect();
        let run = |window: usize| {
            let mut fe = frontend(window);
            for &op in &ops {
                fe.submit(op).unwrap();
            }
            let (store, _) = fe.finish().unwrap();
            let global = store.global_history();
            global
                .keys()
                .into_iter()
                .map(|k| {
                    let h = global.project(k);
                    let last = h.writes().filter_map(|o| o.write_value()).last();
                    (k, h.complete_ops().count(), h.len(), last)
                })
                .collect::<Vec<_>>()
        };
        let unbatched = run(1);
        let batched = run(8);
        assert_eq!(unbatched, batched);
        for (_, complete, len, _) in &batched {
            assert_eq!(complete, len, "every op completed");
        }
    }
}
