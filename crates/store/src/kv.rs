//! The key–value operation alphabet of the store.

use std::fmt;

/// A key in the store's keyspace.
///
/// Keys are plain 64-bit identifiers; the [`Router`](crate::router::Router)
/// mixes them before partitioning, so sequential keys (`0, 1, 2, …`) spread
/// across shards as evenly as random ones.
pub type Key = u64;

/// What an operation does to its key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOpKind {
    /// Read the key's current value.
    Get,
    /// Write a new value to the key.
    Put {
        /// The value being written.
        value: u64,
    },
}

/// One key–value operation, as submitted by a store client.
///
/// `client` identifies the *store-level* client issuing the operation; the
/// shard maps it onto the key's register deployment (puts go to writer
/// `client % W`, gets to reader `client % R`). Two operations by the same
/// client against the same key are never in flight simultaneously — the
/// shard splits such batches into waves, preserving the paper's
/// well-formedness assumption (§2.1: one outstanding operation per
/// client).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvOp {
    /// The key the operation addresses.
    pub key: Key,
    /// The issuing store client.
    pub client: u32,
    /// Read or write.
    pub kind: KvOpKind,
}

impl KvOp {
    /// A `get(key)` by `client`.
    pub fn get(client: u32, key: Key) -> Self {
        KvOp {
            key,
            client,
            kind: KvOpKind::Get,
        }
    }

    /// A `put(key, value)` by `client`.
    pub fn put(client: u32, key: Key, value: u64) -> Self {
        KvOp {
            key,
            client,
            kind: KvOpKind::Put { value },
        }
    }

    /// Returns `true` for puts.
    pub fn is_put(&self) -> bool {
        matches!(self.kind, KvOpKind::Put { .. })
    }
}

impl fmt::Display for KvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            KvOpKind::Get => write!(f, "c{}:get({})", self.client, self.key),
            KvOpKind::Put { value } => write!(f, "c{}:put({}, {})", self.client, self.key, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let g = KvOp::get(3, 17);
        let p = KvOp::put(0, 17, 9);
        assert!(!g.is_put());
        assert!(p.is_put());
        assert_eq!(g.to_string(), "c3:get(17)");
        assert_eq!(p.to_string(), "c0:put(17, 9)");
    }
}
