//! The sharded store: routing, shard ownership, and batched application.

use std::fmt;

use fastreg::config::ClusterConfig;
use fastreg::harness::{BuildError, Runtime};
use fastreg::protocols::registry::ProtocolId;
use fastreg_auth::digest::DigestWriter;
use fastreg_simnet::runner::SimConfig;
use fastreg_simnet::threaded::map_ordered;

use crate::checker::KvHistory;
use crate::kv::KvOp;
use crate::router::Router;
use crate::shard::{Shard, ShardBatch, StoreError};

/// Fluent assembly of a [`ShardedStore`].
///
/// Mirrors the cluster-level
/// [`ClusterBuilder`](fastreg::harness::ClusterBuilder): collect the
/// keyspace partitioning (shard count), the per-key cluster
/// configuration, the backend protocol(s) and the simulation settings,
/// then [`build`](StoreBuilder::build) — which validates every backend's
/// feasibility predicate *up front*, so no per-key register construction
/// can fail later.
///
/// # Examples
///
/// ```
/// use fastreg::config::ClusterConfig;
/// use fastreg::protocols::registry::ProtocolId;
/// use fastreg_store::store::StoreBuilder;
///
/// let cfg = ClusterConfig::crash_stop(5, 1, 2)?;
/// let store = StoreBuilder::new(cfg)
///     .shards(4)
///     .seed(7)
///     .protocol(ProtocolId::FastCrash)
///     .build()?;
/// assert_eq!(store.n_shards(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct StoreBuilder {
    cfg: ClusterConfig,
    shards: u32,
    backends: Vec<ProtocolId>,
    sim: SimConfig,
    seed: u64,
    runtime: Runtime,
}

impl StoreBuilder {
    /// Starts a builder: 8 shards of [`ProtocolId::FastCrash`] over
    /// `cfg`, default simulation settings, seed 0.
    pub fn new(cfg: ClusterConfig) -> Self {
        StoreBuilder {
            cfg,
            shards: 8,
            backends: vec![ProtocolId::FastCrash],
            sim: SimConfig::default(),
            seed: 0,
            runtime: Runtime::Simnet,
        }
    }

    /// Selects the execution substrate for the per-key registers.
    ///
    /// Only [`Runtime::Simnet`] is supported: the store drives each
    /// key's register inside its own simulated world (that is what makes
    /// shard execution deterministic and thread-independent), so
    /// [`build`](Self::build) rejects [`Runtime::Threads`] with
    /// [`BuildError::UnsupportedRuntime`] rather than silently changing
    /// semantics. The method exists so callers can thread one `Runtime`
    /// value through both builders and get a typed error instead of a
    /// surprise.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the shard count (keyspace partitions).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the store seed (per-key register worlds derive theirs from
    /// it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the per-register simulation configuration (delay model,
    /// step budget; the seed inside it is overridden per key).
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Backs every shard with `protocol`.
    pub fn protocol(mut self, protocol: ProtocolId) -> Self {
        self.backends = vec![protocol];
        self
    }

    /// Backs shard `i` with `backends[i % backends.len()]` — the
    /// heterogeneous ("multi-backend") deployment: different slices of
    /// the keyspace run different register protocols behind one router.
    ///
    /// An empty vector is ignored (the previous assignment stands).
    pub fn backends(mut self, backends: Vec<ProtocolId>) -> Self {
        if !backends.is_empty() {
            self.backends = backends;
        }
        self
    }

    /// Assembles the store.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Infeasible`] if any assigned backend's
    /// feasibility predicate rejects the cluster configuration — checked
    /// here, once, so lazy per-key register construction cannot fail.
    ///
    /// Returns [`BuildError::UnsupportedRuntime`] if
    /// [`runtime`](Self::runtime) selected anything but
    /// [`Runtime::Simnet`].
    pub fn build(self) -> Result<ShardedStore, BuildError> {
        if self.runtime != Runtime::Simnet {
            return Err(BuildError::UnsupportedRuntime {
                runtime: self.runtime,
                reason: "the sharded store drives per-key simulated worlds; \
                         only the simnet runtime preserves its determinism contract",
            });
        }
        for &id in &self.backends {
            if !id.feasible(&self.cfg) {
                return Err(BuildError::Infeasible {
                    id,
                    cfg: self.cfg,
                    requirement: id.requirement(),
                });
            }
        }
        let shards = (0..self.shards)
            .map(|i| {
                let protocol = self.backends[i as usize % self.backends.len()];
                Shard::new(i, protocol, self.cfg, self.sim.clone(), self.seed)
            })
            .collect();
        Ok(ShardedStore {
            router: Router::new(self.shards),
            shards,
            cfg: self.cfg,
        })
    }
}

/// What one [`ShardedStore::apply_batch`] call did, summed over shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Operations applied.
    pub ops: u64,
    /// Shards that received a non-empty sub-batch.
    pub shards_hit: u64,
    /// Distinct `(shard, key)` groups driven.
    pub key_groups: u64,
    /// Settle waves run across all shards.
    pub waves: u64,
}

impl BatchStats {
    fn absorb(&mut self, b: &ShardBatch) {
        self.ops += b.ops;
        self.shards_hit += 1;
        self.key_groups += b.keys;
        self.waves += b.waves;
    }
}

/// A key–value store assembled from hash-partitioned shards of
/// single-register deployments.
///
/// * the [`Router`] maps each key to its owning shard (stable, pure);
/// * each [`Shard`] owns one independent register deployment per key,
///   built from the shard's [`ProtocolId`] backend;
/// * [`apply_batch`](ShardedStore::apply_batch) routes a batch of
///   [`KvOp`]s and drives the affected shards **concurrently** on a
///   worker pool ([`map_ordered`]) — shards share nothing, so the thread
///   count changes wall-clock only, never results (pinned by
///   [`fingerprint`](ShardedStore::fingerprint) tests);
/// * [`global_history`](ShardedStore::global_history) harvests every
///   register's recorded operations into one key-tagged history for the
///   [`StoreChecker`](crate::checker::StoreChecker).
pub struct ShardedStore {
    router: Router,
    shards: Vec<Shard>,
    cfg: ClusterConfig,
}

impl ShardedStore {
    /// Starts a [`StoreBuilder`] (convenience alias for
    /// [`StoreBuilder::new`]).
    pub fn builder(cfg: ClusterConfig) -> StoreBuilder {
        StoreBuilder::new(cfg)
    }

    /// The store's router.
    pub fn router(&self) -> Router {
        self.router
    }

    /// The per-key cluster configuration.
    pub fn cfg(&self) -> ClusterConfig {
        self.cfg
    }

    /// Number of shards.
    pub fn n_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Operations applied over the store's lifetime.
    pub fn ops_applied(&self) -> u64 {
        self.shards.iter().map(Shard::ops_applied).sum()
    }

    /// Distinct keys served so far.
    pub fn distinct_keys(&self) -> u64 {
        self.shards.iter().map(|s| s.key_count() as u64).sum()
    }

    /// Total messages sent across every register of every shard.
    pub fn messages_sent(&self) -> u64 {
        self.shards.iter().map(Shard::messages_sent).sum()
    }

    /// A stable fingerprint of everything the store did: FNV-1a over the
    /// shard fingerprints in shard order. Two runs with equal
    /// fingerprints executed event-identical simulated histories — the
    /// value the "same results at any thread count" guarantee is checked
    /// on.
    pub fn fingerprint(&self) -> u64 {
        let mut digest = DigestWriter::new();
        for s in &self.shards {
            digest.write_u64(s.fingerprint());
        }
        digest.finish()
    }

    /// Applies one batch of operations, driving the affected shards
    /// concurrently on `threads` worker threads.
    ///
    /// Ops are grouped per shard by the router, **preserving submission
    /// order within each shard**; each shard then applies its sub-batch
    /// independently (see [`Shard::apply`] for the per-key wave
    /// semantics). Results are collected in shard order, so both the
    /// stats and any error are independent of the thread count.
    ///
    /// # Errors
    ///
    /// Returns the first (by shard order) [`StoreError`] if any shard
    /// stalled; later shards of the same batch still ran.
    pub fn apply_batch(&mut self, ops: &[KvOp], threads: usize) -> Result<BatchStats, StoreError> {
        let mut per_shard: Vec<Vec<KvOp>> = vec![Vec::new(); self.shards.len()];
        for op in ops {
            per_shard[self.router.shard_of(op.key) as usize].push(*op);
        }
        let items: Vec<(&mut Shard, Vec<KvOp>)> = self
            .shards
            .iter_mut()
            .zip(per_shard)
            .filter(|(_, batch)| !batch.is_empty())
            .collect();
        let results = map_ordered(items, threads, |_, (shard, batch)| shard.apply(&batch));
        let mut stats = BatchStats::default();
        for r in results {
            stats.absorb(&r?);
        }
        Ok(stats)
    }

    /// Harvests every register's recorded operations into one key-tagged
    /// [`KvHistory`] — the input of the
    /// [`StoreChecker`](crate::checker::StoreChecker)'s per-key
    /// projection.
    pub fn global_history(&self) -> KvHistory {
        KvHistory::harvest(self)
    }
}

impl fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("cfg", &self.cfg)
            .field("distinct_keys", &self.distinct_keys())
            .field("ops_applied", &self.ops_applied())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvOp;

    fn small_store(shards: u32) -> ShardedStore {
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        StoreBuilder::new(cfg)
            .shards(shards)
            .seed(11)
            .protocol(ProtocolId::FastCrash)
            .build()
            .unwrap()
    }

    fn mixed_ops(n: u64) -> Vec<KvOp> {
        (0..n)
            .map(|i| {
                let key = i % 13;
                if i % 3 == 0 {
                    KvOp::put(0, key, i + 1)
                } else {
                    KvOp::get((i % 2) as u32, key)
                }
            })
            .collect()
    }

    #[test]
    fn builder_validates_backends_up_front() {
        let cfg = ClusterConfig::crash_stop(5, 1, 3).unwrap(); // past the fast bound
        let err = StoreBuilder::new(cfg)
            .shards(2)
            .backends(vec![ProtocolId::Abd, ProtocolId::FastCrash])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("fast-crash"));
        // A feasible assignment builds.
        let store = StoreBuilder::new(cfg)
            .shards(2)
            .protocol(ProtocolId::Abd)
            .build()
            .unwrap();
        assert_eq!(store.n_shards(), 2);
    }

    #[test]
    fn builder_rejects_the_threaded_runtime_typed_ly() {
        use fastreg::harness::Affinity;
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        let requested = Runtime::Threads {
            workers: 2,
            affinity: Affinity::None,
        };
        let err = StoreBuilder::new(cfg)
            .shards(2)
            .runtime(requested)
            .build()
            .unwrap_err();
        let BuildError::UnsupportedRuntime { runtime, reason } = err else {
            panic!("expected UnsupportedRuntime, got {err:?}");
        };
        assert_eq!(runtime, requested);
        assert!(reason.contains("simnet"));
        // Explicitly asking for the simnet still builds.
        let store = StoreBuilder::new(cfg)
            .shards(2)
            .runtime(Runtime::Simnet)
            .build()
            .unwrap();
        assert_eq!(store.n_shards(), 2);
    }

    #[test]
    fn heterogeneous_backends_round_robin() {
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        let store = StoreBuilder::new(cfg)
            .shards(5)
            .backends(vec![ProtocolId::FastCrash, ProtocolId::Abd])
            .build()
            .unwrap();
        let got: Vec<ProtocolId> = store.shards().iter().map(Shard::protocol).collect();
        assert_eq!(
            got,
            vec![
                ProtocolId::FastCrash,
                ProtocolId::Abd,
                ProtocolId::FastCrash,
                ProtocolId::Abd,
                ProtocolId::FastCrash,
            ]
        );
        // Empty backend lists are ignored, not a panic-later.
        let store = StoreBuilder::new(cfg).backends(vec![]).build().unwrap();
        assert_eq!(store.shards()[0].protocol(), ProtocolId::FastCrash);
    }

    #[test]
    fn batches_route_and_apply() {
        let mut store = small_store(4);
        let stats = store.apply_batch(&mixed_ops(40), 2).unwrap();
        assert_eq!(stats.ops, 40);
        assert!(stats.shards_hit >= 2, "13 keys over 4 shards hit several");
        assert!(stats.key_groups >= 13, "every key formed a group");
        assert_eq!(store.ops_applied(), 40);
        assert_eq!(store.distinct_keys(), 13);
        assert!(store.messages_sent() > 0);
        assert!(format!("{store:?}").contains("distinct_keys"));
    }

    #[test]
    fn results_are_identical_at_any_thread_count() {
        let fingerprints: Vec<u64> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|threads| {
                let mut store = small_store(8);
                for chunk in mixed_ops(120).chunks(30) {
                    store.apply_batch(chunk, threads).unwrap();
                }
                store.fingerprint()
            })
            .collect();
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "thread count changed the store's execution: {fingerprints:?}"
        );
    }

    #[test]
    fn empty_batches_are_free() {
        let mut store = small_store(2);
        let stats = store.apply_batch(&[], 4).unwrap();
        assert_eq!(stats, BatchStats::default());
        assert_eq!(store.ops_applied(), 0);
    }
}
