//! Per-key contract checking: projecting the store's global history onto
//! per-key sub-histories and running the existing register checkers on
//! each.
//!
//! The store's correctness claim is *per key*: every key is one atomic
//! (or regular) register, whatever the interleaving of operations across
//! keys. The [`StoreChecker`] makes that checkable with the machinery
//! the repository already trusts — [`check_swmr_atomicity`], the
//! Wing–Gong linearizability oracle, [`check_swmr_regularity`] — by
//! projecting the key-tagged [`KvHistory`] onto one
//! [`History`] per key and lifting each checker result into the stable
//! [`Verdict`] codes of `fastreg_atomicity::verdict`.

use std::collections::{BTreeMap, BTreeSet};

use fastreg::protocols::registry::{Contract, ProtocolId};
use fastreg_atomicity::history::{History, OpKind, Operation};
use fastreg_atomicity::linearizability::check_linearizable;
use fastreg_atomicity::regularity::check_swmr_regularity;
use fastreg_atomicity::streaming::{
    stream_lin_verdict, stream_regularity_verdict, stream_swmr_verdict,
};
use fastreg_atomicity::swmr::check_swmr_atomicity;
use fastreg_atomicity::verdict::Verdict;
use fastreg_simnet::threaded::map_ordered;

use crate::kv::Key;
use crate::store::ShardedStore;

/// One recorded operation, tagged with the key it addressed.
#[derive(Clone, Debug)]
pub struct KvRecord {
    /// The key.
    pub key: Key,
    /// The recorded register operation (times are ticks of the key's own
    /// simulated world — comparable within the key only).
    pub op: Operation,
}

/// The store's global operation history: every register operation of
/// every key, tagged with its key.
///
/// Assembled by [`ShardedStore::global_history`]. Cross-key timestamps
/// are **not** comparable (each key runs in its own simulated world), so
/// the only meaningful consumers are per-key: [`KvHistory::project`]
/// rebuilds the checkable [`History`] of one key.
#[derive(Clone, Debug, Default)]
pub struct KvHistory {
    records: Vec<KvRecord>,
}

impl KvHistory {
    /// Harvests the global history of `store`.
    pub(crate) fn harvest(store: &ShardedStore) -> Self {
        let mut records = Vec::new();
        for shard in store.shards() {
            for key in shard.keys() {
                let h = shard.key_history(key).expect("key listed by the shard");
                records.extend(h.ops().iter().map(|op| KvRecord {
                    key,
                    op: op.clone(),
                }));
            }
        }
        KvHistory { records }
    }

    /// All records, in `(shard, key, invocation)` order.
    pub fn records(&self) -> &[KvRecord] {
        &self.records
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The distinct keys appearing in the history, in key order.
    pub fn keys(&self) -> Vec<Key> {
        self.records
            .iter()
            .map(|r| r.key)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Projects the sub-history of `key`: the register [`History`]
    /// containing exactly the operations that addressed `key`, in
    /// invocation order — the input the per-register checkers expect.
    pub fn project(&self, key: Key) -> History {
        rebuild(self.records.iter().filter(|r| r.key == key).map(|r| &r.op))
    }

    /// Groups the records per key in **one pass** — the bulk form of
    /// [`project`](KvHistory::project) the checker uses, linear in the
    /// record count instead of `O(keys × records)`.
    fn per_key_ops(&self) -> BTreeMap<Key, Vec<&Operation>> {
        let mut groups: BTreeMap<Key, Vec<&Operation>> = BTreeMap::new();
        for r in &self.records {
            groups.entry(r.key).or_default().push(&r.op);
        }
        groups
    }

    /// Flattens every record of every key into one register [`History`]
    /// for **latency accounting only**: the per-op intervals are valid
    /// (each comes from its own key's world), cross-key times are not —
    /// never feed the result to a consistency checker; that is what
    /// [`project`](KvHistory::project) is for.
    pub fn latency_history(&self) -> History {
        rebuild(self.records.iter().map(|r| &r.op))
    }
}

/// Rebuilds recorded operations into a register [`History`] (invocation
/// order restored by sorting on the interval endpoints) — the one
/// shared invoke/respond loop behind [`KvHistory::project`] and
/// [`KvHistory::latency_history`].
fn rebuild<'a>(ops: impl Iterator<Item = &'a Operation>) -> History {
    let mut ops: Vec<&Operation> = ops.collect();
    ops.sort_by_key(|op| (op.invoked_at, op.responded_at));
    let mut h = History::new();
    for op in ops {
        let id = match op.kind {
            OpKind::Write { value } => h.invoke_write(op.proc, value, op.invoked_at),
            OpKind::Read => h.invoke_read(op.proc, op.invoked_at),
        };
        if let Some(at) = op.responded_at {
            h.respond(id, op.returned, at);
        }
    }
    h
}

/// The verdict of checking one key's sub-history against its shard's
/// contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyVerdict {
    /// The key.
    pub key: Key,
    /// The shard owning it.
    pub shard: u32,
    /// The backend protocol serving it.
    pub protocol: ProtocolId,
    /// The contract checked (the protocol's declared contract).
    pub contract: Contract,
    /// The checker's verdict, in the stable `verdict.rs` codes.
    pub verdict: Verdict,
}

impl KeyVerdict {
    /// A violation on a *sound* backend is a genuine protocol (or store)
    /// bug; on an [`Contract::Unsound`] backend it is the sought
    /// counterexample — mirroring the exploration engine's
    /// expected/unexpected split.
    pub fn is_unexpected(&self) -> bool {
        self.verdict.is_proven_violation() && self.contract != Contract::Unsound
    }
}

/// What checking a whole store produced: one verdict per key.
#[derive(Clone, Debug, Default)]
pub struct StoreCheckReport {
    /// Per-key verdicts, in key order.
    pub per_key: Vec<KeyVerdict>,
}

impl StoreCheckReport {
    /// Keys whose sub-history satisfied their contract.
    pub fn clean_count(&self) -> usize {
        self.per_key.iter().filter(|k| k.verdict.is_clean()).count()
    }

    /// The verdicts that are proven violations.
    pub fn violations(&self) -> impl Iterator<Item = &KeyVerdict> {
        self.per_key
            .iter()
            .filter(|k| k.verdict.is_proven_violation())
    }

    /// Violations on sound backends — real bugs.
    pub fn unexpected(&self) -> impl Iterator<Item = &KeyVerdict> {
        self.per_key.iter().filter(|k| k.is_unexpected())
    }

    /// Returns `true` when every key is clean.
    pub fn is_clean(&self) -> bool {
        self.clean_count() == self.per_key.len()
    }
}

/// Checks every key of a store against its shard's declared contract.
///
/// A zero-sized namespace, like
/// [`Registry`](fastreg::protocols::registry::Registry).
pub struct StoreChecker;

impl StoreChecker {
    /// Projects `history` per key and checks each sub-history against
    /// the contract of the shard (of `store`) owning that key.
    ///
    /// Split from [`StoreChecker::check`] so tests can feed hand-built
    /// histories through the very same projection path.
    pub fn check_history(store: &ShardedStore, history: &KvHistory) -> StoreCheckReport {
        let router = store.router();
        let per_key = history
            .per_key_ops()
            .into_iter()
            .map(|(key, ops)| {
                let shard_index = router.shard_of(key);
                let shard = &store.shards()[shard_index as usize];
                let contract = shard.protocol().contract();
                let sub = rebuild(ops.into_iter());
                KeyVerdict {
                    key,
                    shard: shard_index,
                    protocol: shard.protocol(),
                    contract,
                    verdict: verdict_for(&sub, contract, store.cfg().w),
                }
            })
            .collect();
        StoreCheckReport { per_key }
    }

    /// Harvests the store's global history, projects it per key, and
    /// checks every sub-history: `check_history(store,
    /// &store.global_history())`.
    pub fn check(store: &ShardedStore) -> StoreCheckReport {
        Self::check_history(store, &store.global_history())
    }

    /// Streaming, parallel form of [`StoreChecker::check_history`]: the
    /// per-key sub-histories are checked concurrently across `threads`
    /// [`map_ordered`] workers,
    /// each running the streaming checkers of
    /// `fastreg_atomicity::streaming` instead of the batch ones.
    ///
    /// The report is identical to [`StoreChecker::check_history`]'s at
    /// any `threads` value, except that a key whose history overflows the
    /// batch linearizability oracle may get an exact verdict where the
    /// batch path reports `checker-limit` (the streaming oracle only
    /// gives up when a single *epoch* overflows).
    pub fn check_streaming(
        store: &ShardedStore,
        history: &KvHistory,
        threads: usize,
    ) -> StoreCheckReport {
        let router = store.router();
        let w = store.cfg().w;
        // Resolve shard/contract metadata up front so the workers only
        // touch plain data, not the store.
        let items: Vec<(KeyVerdict, History)> = history
            .per_key_ops()
            .into_iter()
            .map(|(key, ops)| {
                let shard_index = router.shard_of(key);
                let shard = &store.shards()[shard_index as usize];
                let contract = shard.protocol().contract();
                let seed = KeyVerdict {
                    key,
                    shard: shard_index,
                    protocol: shard.protocol(),
                    contract,
                    verdict: Verdict::Clean,
                };
                (seed, rebuild(ops.into_iter()))
            })
            .collect();
        let per_key = map_ordered(items, threads, move |_, (seed, sub)| KeyVerdict {
            verdict: streaming_verdict_for(&sub, seed.contract, w),
            ..seed
        });
        StoreCheckReport { per_key }
    }
}

/// Checks one history against a contract, as the registry's
/// [`contract_verdict`](fastreg::harness::RegisterOps::contract_verdict)
/// does for live clusters: the §3.1 SWMR checker for atomic
/// single-writer histories, the Wing–Gong linearizability oracle when
/// `w > 1` (and for [`Contract::Unsound`], the contract the
/// counterexample targets claim), the regularity checker for
/// [`Contract::Regular`].
pub fn verdict_for(history: &History, contract: Contract, w: u32) -> Verdict {
    match contract {
        Contract::Atomic if w <= 1 => Verdict::from_atomicity(&check_swmr_atomicity(history)),
        Contract::Atomic | Contract::Unsound => {
            Verdict::from_linearizable(&check_linearizable(history))
        }
        Contract::Regular => Verdict::from_regularity(&check_swmr_regularity(history)),
    }
}

/// [`verdict_for`] with the streaming checkers behind the same contract
/// dispatch — the kernel [`StoreChecker::check_streaming`] runs per key.
pub fn streaming_verdict_for(history: &History, contract: Contract, w: u32) -> Verdict {
    match contract {
        Contract::Atomic if w <= 1 => stream_swmr_verdict(history),
        Contract::Atomic | Contract::Unsound => stream_lin_verdict(history),
        Contract::Regular => stream_regularity_verdict(history),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastreg::config::ClusterConfig;
    use fastreg_atomicity::history::RegValue;
    use fastreg_atomicity::verdict::ViolationKind;

    use crate::kv::KvOp;
    use crate::store::StoreBuilder;

    fn driven_store() -> ShardedStore {
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        let mut store = StoreBuilder::new(cfg)
            .shards(4)
            .seed(3)
            .backends(vec![ProtocolId::FastCrash, ProtocolId::Abd])
            .build()
            .unwrap();
        let ops: Vec<KvOp> = (0..60)
            .map(|i| {
                let key = i % 9;
                if i % 3 == 0 {
                    KvOp::put(0, key, i + 1)
                } else {
                    KvOp::get((i % 2) as u32, key)
                }
            })
            .collect();
        for chunk in ops.chunks(15) {
            store.apply_batch(chunk, 2).unwrap();
        }
        store
    }

    #[test]
    fn projection_partitions_the_global_history() {
        let store = driven_store();
        let global = store.global_history();
        assert_eq!(global.len(), 60);
        assert!(!global.is_empty());
        let keys = global.keys();
        assert_eq!(keys, (0..9).collect::<Vec<_>>());
        let per_key_total: usize = keys.iter().map(|&k| global.project(k).len()).sum();
        assert_eq!(per_key_total, global.len(), "projection loses nothing");
        // A projected sub-history matches the shard's own record.
        for &key in &keys {
            let shard = &store.shards()[store.router().shard_of(key) as usize];
            assert_eq!(
                global.project(key).render(),
                shard.key_history(key).unwrap().render(),
                "key {key}"
            );
        }
        assert_eq!(global.project(999).len(), 0, "unknown keys are empty");
    }

    #[test]
    fn every_key_of_a_sound_store_is_clean() {
        let store = driven_store();
        let report = StoreChecker::check(&store);
        assert_eq!(report.per_key.len(), 9);
        assert!(
            report.is_clean(),
            "violations: {:?}",
            report.violations().collect::<Vec<_>>()
        );
        assert_eq!(report.clean_count(), 9);
        assert_eq!(report.unexpected().count(), 0);
        // The projection-based verdicts agree with asking each live
        // register directly.
        for kv in &report.per_key {
            let shard = &store.shards()[kv.shard as usize];
            let direct = {
                let h = shard.key_history(kv.key).unwrap();
                verdict_for(&h, kv.contract, store.cfg().w)
            };
            assert_eq!(kv.verdict, direct, "key {}", kv.key);
        }
    }

    #[test]
    fn verdict_for_dispatches_per_contract() {
        // An inverted history: write completes, a later read misses it.
        let mut h = History::new();
        let w = h.invoke_write(0, 7, 0);
        h.respond(w, None, 10);
        let r1 = h.invoke_read(1, 11);
        h.respond(r1, Some(RegValue::Val(7)), 12);
        let r2 = h.invoke_read(2, 13);
        h.respond(r2, Some(RegValue::Bottom), 14);
        assert!(!verdict_for(&h, Contract::Atomic, 1).is_clean());
        assert!(!verdict_for(&h, Contract::Regular, 1).is_clean());
        assert_eq!(
            verdict_for(&h, Contract::Unsound, 1),
            Verdict::Violation(ViolationKind::NotLinearizable)
        );
        // A clean sequential history is clean under every contract.
        let mut ok = History::new();
        let w = ok.invoke_write(0, 1, 0);
        ok.respond(w, None, 2);
        let r = ok.invoke_read(1, 3);
        ok.respond(r, Some(RegValue::Val(1)), 4);
        for c in [Contract::Atomic, Contract::Regular, Contract::Unsound] {
            assert!(verdict_for(&ok, c, 1).is_clean(), "{c:?}");
        }
    }

    #[test]
    fn streaming_check_agrees_with_batch_at_any_thread_count() {
        let store = driven_store();
        let global = store.global_history();
        let batch = StoreChecker::check_history(&store, &global);
        for threads in [1, 2, 4] {
            let streamed = StoreChecker::check_streaming(&store, &global, threads);
            assert_eq!(streamed.per_key, batch.per_key, "threads = {threads}");
        }
        // And on a doctored (violating) history too.
        let mut doctored = global.clone();
        for r in &mut doctored.records {
            if r.op.kind == OpKind::Read && r.op.responded_at.is_some() {
                r.op.returned = Some(RegValue::Val(424_242));
                break;
            }
        }
        let batch = StoreChecker::check_history(&store, &doctored);
        assert!(!batch.is_clean());
        for threads in [1, 2, 4] {
            let streamed = StoreChecker::check_streaming(&store, &doctored, threads);
            assert_eq!(streamed.per_key, batch.per_key, "threads = {threads}");
        }
    }

    #[test]
    fn doctored_histories_surface_per_key_violations() {
        // Take a real store, then check a *doctored* global history in
        // which one key's read returns a never-written value: only that
        // key's verdict flips, and it is flagged unexpected (sound
        // backend).
        let store = driven_store();
        let mut global = store.global_history();
        // Key 1 receives only gets in `driven_store` (every i ≡ 1 mod 9
        // has i % 3 ≠ 0), so a doctored unwritten return is unambiguous.
        let victim = 1;
        assert!(global.keys().contains(&victim));
        let mut doctored = false;
        for r in &mut global.records {
            if r.key == victim
                && r.op.kind == OpKind::Read
                && r.op.responded_at.is_some()
                && !doctored
            {
                r.op.returned = Some(RegValue::Val(999_999));
                doctored = true;
            }
        }
        assert!(doctored, "found a completed read to doctor");
        let report = StoreChecker::check_history(&store, &global);
        let bad: Vec<_> = report.violations().collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].key, victim);
        assert!(bad[0].is_unexpected());
        assert!(!report.is_clean());
        assert_eq!(report.clean_count(), report.per_key.len() - 1);
    }
}
