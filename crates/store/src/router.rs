//! Deterministic key → shard routing.

use crate::kv::Key;

/// The finalizing mix of splitmix64 — a measured, well-dispersing 64-bit
/// permutation. Shared by the router (key → shard) and the shard layer
/// (per-key register seeds), and **stable by contract**: changing these
/// constants would silently re-partition every existing keyspace, so they
/// are pinned by tests.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps keys to shards deterministically and stably.
///
/// The mapping is a pure function of `(key, shard count)`: it does not
/// depend on insertion order, thread count, process, or run — the same
/// key lands on the same shard forever (for a fixed shard count), which
/// is what makes per-key histories meaningful across batches.
///
/// Keys are mixed through a splitmix64 finalizer before
/// the modulo, so *any* keyspace shape — sequential ids, timestamps,
/// hashes — spreads near-uniformly: the balance property (no shard above
/// 2× the mean load for uniform keys) is pinned by the
/// `router_properties` proptest suite.
///
/// # Examples
///
/// ```
/// use fastreg_store::router::Router;
///
/// let router = Router::new(8);
/// let shard = router.shard_of(42);
/// assert!(shard < 8);
/// assert_eq!(shard, Router::new(8).shard_of(42), "stable across instances");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Router {
    shards: u32,
}

impl Router {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        Router { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `key` (always `< shards`).
    pub fn shard_of(&self, key: Key) -> u32 {
        (mix64(key) % self.shards as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        Router::new(0);
    }

    #[test]
    fn mapping_is_in_range_and_total() {
        for shards in [1u32, 2, 3, 8, 13] {
            let r = Router::new(shards);
            assert_eq!(r.shards(), shards);
            for key in 0..200u64 {
                assert!(r.shard_of(key) < shards);
            }
        }
    }

    #[test]
    fn mapping_is_pinned() {
        // The mixing constants are a compatibility surface: a change
        // re-partitions every keyspace. These concrete values pin them.
        let r = Router::new(8);
        let got: Vec<u32> = (0..8).map(|k| r.shard_of(k)).collect();
        assert_eq!(got, vec![7, 1, 6, 5, 2, 2, 0, 7]);
    }

    #[test]
    fn sequential_keys_spread_over_every_shard() {
        let r = Router::new(4);
        let mut hit = [false; 4];
        for key in 0..64u64 {
            hit[r.shard_of(key) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 sequential keys cover 4 shards");
    }
}
