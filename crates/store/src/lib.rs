//! # fastreg_store
//!
//! A sharded, multi-register key–value store built from the paper's
//! register protocols: the step from *one atomic cell* (what Fig. 2 /
//! Fig. 5 implement, and what the rest of the workspace serves) to *a
//! keyspace* — the shape a production register-based storage system
//! actually has.
//!
//! ```text
//!            KvOp stream (many simulated clients)
//!                          │
//!                 ┌────────▼────────┐
//!                 │ BatchedFrontend │   window of pending ops
//!                 └────────┬────────┘
//!                          │ flush: group by shard
//!              ┌───────────┼───────────────┐
//!       Router │shard_of(k)│               │     (map_ordered:
//!              ▼           ▼               ▼      shards drive
//!         ┌─────────┐ ┌─────────┐    ┌─────────┐  concurrently,
//!         │ Shard 0 │ │ Shard 1 │ …  │ Shard S │  results in
//!         │fast-crash│ │  abd    │    │fast-byz │  shard order)
//!         └────┬────┘ └────┬────┘    └────┬────┘
//!              │ one DynCluster per key   │
//!              ▼           ▼              ▼
//!        key → [W|R|S…] simulated register deployments
//!                          │
//!                 ┌────────▼────────┐
//!                 │  StoreChecker   │  global history → per-key
//!                 └─────────────────┘  sub-histories → verdicts
//! ```
//!
//! * [`router::Router`] hash-partitions the keyspace: a pure, stable
//!   `key → shard` map (splitmix64-mixed, pinned by property tests).
//! * Each [`shard::Shard`] owns an independent register deployment
//!   ([`DynCluster`](fastreg::harness::DynCluster)) **per key**, built
//!   through [`ClusterBuilder`](fastreg::harness::ClusterBuilder) from
//!   the shard's [`ProtocolId`](fastreg::protocols::registry::ProtocolId)
//!   — shards may run *different* protocols behind one router
//!   (heterogeneous backends).
//! * The [`frontend::BatchedFrontend`] coalesces an operation stream
//!   into per-shard batches and drives shards concurrently on a worker
//!   pool ([`fastreg_simnet::threaded::map_ordered`]); because shards
//!   share nothing and results collect in shard order, verdicts,
//!   histories and trace fingerprints are **identical at any thread
//!   count**.
//! * The [`checker::StoreChecker`] projects the store's global history
//!   onto per-key sub-histories and runs the existing atomicity /
//!   linearizability / regularity checkers on each, reporting stable
//!   [`Verdict`](fastreg_atomicity::verdict::Verdict) codes — every
//!   registry protocol instantly becomes a KV backend with its contract
//!   checked per key.
//!
//! ## Quickstart
//!
//! ```
//! use fastreg::config::ClusterConfig;
//! use fastreg::protocols::registry::ProtocolId;
//! use fastreg_store::prelude::*;
//!
//! let cfg = ClusterConfig::crash_stop(5, 1, 2)?;
//! let store = StoreBuilder::new(cfg)
//!     .shards(4)
//!     .seed(7)
//!     .backends(vec![ProtocolId::FastCrash, ProtocolId::Abd])
//!     .build()?;
//!
//! let mut frontend = BatchedFrontend::new(store, 2, 16);
//! for i in 0..40u64 {
//!     let key = i % 10;
//!     frontend.submit(if i % 4 == 0 {
//!         KvOp::put(0, key, i + 1)
//!     } else {
//!         KvOp::get((i % 2) as u32, key)
//!     })?;
//! }
//! let (store, stats) = frontend.finish()?;
//! assert_eq!(stats.ops, 40);
//!
//! let report = StoreChecker::check(&store);
//! assert!(report.is_clean(), "every key upholds its contract");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod frontend;
pub mod kv;
pub mod router;
pub mod shard;
pub mod store;

pub use checker::{KeyVerdict, KvHistory, KvRecord, StoreCheckReport, StoreChecker};
pub use frontend::{BatchedFrontend, FrontendStats};
pub use kv::{Key, KvOp, KvOpKind};
pub use router::Router;
pub use shard::{Shard, ShardBatch, StoreError};
pub use store::{BatchStats, ShardedStore, StoreBuilder};

/// Commonly used items, re-exported for examples and tests.
pub mod prelude {
    pub use crate::checker::{KeyVerdict, KvHistory, StoreCheckReport, StoreChecker};
    pub use crate::frontend::{BatchedFrontend, FrontendStats};
    pub use crate::kv::{Key, KvOp, KvOpKind};
    pub use crate::router::Router;
    pub use crate::shard::{Shard, ShardBatch, StoreError};
    pub use crate::store::{BatchStats, ShardedStore, StoreBuilder};
}
