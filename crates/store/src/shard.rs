//! One shard: an independent slice of the keyspace, one register
//! deployment per key.

#[allow(clippy::disallowed_types)]
use std::collections::{BTreeMap, HashSet}; // fastreg-lint: allow(nondet-order): wave-busy set, membership tests only
use std::fmt;

use fastreg::config::ClusterConfig;
use fastreg::harness::{ClusterBuilder, DynCluster, RegisterOps};
use fastreg::protocols::registry::ProtocolId;
use fastreg_atomicity::history::History;
use fastreg_auth::digest::DigestWriter;
use fastreg_simnet::runner::SimConfig;
use fastreg_simnet::world::QuiescenceError;

use crate::kv::{Key, KvOp, KvOpKind};
use crate::router::mix64;

/// A store operation that could not complete.
#[derive(Clone, Debug)]
pub enum StoreError {
    /// A key's register deployment stopped making progress (step budget
    /// exhausted with messages still in transit).
    ShardStalled {
        /// The shard that stalled.
        shard: u32,
        /// The key whose register was being driven.
        key: Key,
        /// The scheduler's account of the stall.
        source: QuiescenceError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ShardStalled { shard, key, source } => {
                write!(f, "shard {shard} stalled driving key {key}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::ShardStalled { source, .. } => Some(source),
        }
    }
}

/// What one [`Shard::apply`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardBatch {
    /// Operations applied.
    pub ops: u64,
    /// Distinct keys the batch touched.
    pub keys: u64,
    /// Settle waves run (≥ `keys`; more when a batch carried conflicting
    /// ops by one client on one key).
    pub waves: u64,
}

/// One shard of a [`ShardedStore`](crate::store::ShardedStore): a
/// [`ProtocolId`] backend, a cluster configuration, and one independent
/// register deployment ([`DynCluster`]) per key it has served.
///
/// Registers are created lazily on first access, seeded from
/// `mix64(store seed, shard index, key)` so every key's simulated world
/// is deterministic and distinct. A shard is `Send` and owns all its
/// state, which is what lets the batched frontend drive disjoint shards
/// on worker threads without any locking.
pub struct Shard {
    index: u32,
    protocol: ProtocolId,
    cfg: ClusterConfig,
    sim: SimConfig,
    seed: u64,
    registers: BTreeMap<Key, DynCluster>,
    ops_applied: u64,
}

impl Shard {
    /// A fresh shard. The caller (the store builder) has already
    /// validated that `protocol` is feasible at `cfg`.
    pub(crate) fn new(
        index: u32,
        protocol: ProtocolId,
        cfg: ClusterConfig,
        sim: SimConfig,
        seed: u64,
    ) -> Self {
        Shard {
            index,
            protocol,
            cfg,
            sim,
            seed,
            registers: BTreeMap::new(),
            ops_applied: 0,
        }
    }

    /// The shard's position in the store.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The register protocol backing every key on this shard.
    pub fn protocol(&self) -> ProtocolId {
        self.protocol
    }

    /// The per-key cluster configuration.
    pub fn cfg(&self) -> ClusterConfig {
        self.cfg
    }

    /// Operations applied over the shard's lifetime.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Keys this shard has served, in key order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.registers.keys().copied()
    }

    /// Number of distinct keys served.
    pub fn key_count(&self) -> usize {
        self.registers.len()
    }

    /// Total messages sent across all of the shard's registers.
    pub fn messages_sent(&self) -> u64 {
        self.registers.values().map(|c| c.messages_sent()).sum()
    }

    /// Snapshot of one key's operation history (`None` if the key was
    /// never touched). Times are ticks of *that key's* simulated world —
    /// comparable within the key, not across keys.
    pub fn key_history(&self, key: Key) -> Option<History> {
        self.registers.get(&key).map(|c| c.snapshot())
    }

    /// A stable fingerprint of everything the shard's registers did:
    /// FNV-1a over `(key, trace fingerprint)` in key order. Equal
    /// fingerprints ⇔ event-identical shard executions; the store's
    /// thread-independence guarantee is checked on these.
    pub fn fingerprint(&self) -> u64 {
        let mut digest = DigestWriter::new();
        for (key, cluster) in &self.registers {
            digest.write_u64(*key);
            let sim = cluster
                .sim_control_ref()
                .expect("store registers run on the simnet runtime");
            digest.write_u64(sim.trace_fingerprint());
        }
        digest.finish()
    }

    /// The register deployment for `key`, created on first access.
    fn register(&mut self, key: Key) -> &mut DynCluster {
        let (protocol, cfg, sim) = (self.protocol, self.cfg, &self.sim);
        let seed = mix64(self.seed ^ mix64(key ^ ((self.index as u64) << 32)));
        self.registers.entry(key).or_insert_with(|| {
            ClusterBuilder::new(cfg)
                .sim(sim.clone())
                .seed(seed) // an explicit seed always wins over sim.seed
                .build(protocol)
                .expect("the store builder validated feasibility")
        })
    }

    /// Applies a batch of operations, all of which must route to this
    /// shard.
    ///
    /// Ops are grouped per key (preserving submission order within each
    /// key) and each key group is driven *concurrently inside its
    /// register's simulated world*: every op is injected asynchronously,
    /// in **waves** that keep at most one operation outstanding per
    /// process (puts at writer `client % W`, gets at reader
    /// `client % R`), then the world settles. Concurrent gets and puts on
    /// one key therefore genuinely overlap — this is where a fast-read
    /// backend earns its single round trip — while the recorded history
    /// stays well-formed for the checkers.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ShardStalled`] if any key's world exhausts
    /// its step budget before quiescing.
    pub fn apply(&mut self, ops: &[KvOp]) -> Result<ShardBatch, StoreError> {
        let mut per_key: BTreeMap<Key, Vec<KvOp>> = BTreeMap::new();
        for op in ops {
            per_key.entry(op.key).or_default().push(*op);
        }
        let mut batch = ShardBatch {
            ops: ops.len() as u64,
            keys: per_key.len() as u64,
            waves: 0,
        };
        let (shard_index, cfg) = (self.index, self.cfg);
        for (key, kops) in per_key {
            let cluster = self.register(key);
            let layout = cluster.layout();
            // fastreg-lint: allow(nondet-order): insert/clear membership only; wave boundaries depend on op order, not set order
            #[allow(clippy::disallowed_types)]
            let mut busy: HashSet<u32> = HashSet::new();
            let settle = |cluster: &mut DynCluster| {
                cluster
                    .try_settle()
                    .map_err(|source| StoreError::ShardStalled {
                        shard: shard_index,
                        key,
                        source,
                    })
            };
            for op in kops {
                let proc = match op.kind {
                    KvOpKind::Put { .. } => layout.writer(op.client % cfg.w).index(),
                    KvOpKind::Get => layout.reader(op.client % cfg.r).index(),
                };
                if !busy.insert(proc) {
                    // This process already has an op in flight: close the
                    // wave so the history stays well-formed.
                    settle(cluster)?;
                    batch.waves += 1;
                    busy.clear();
                    busy.insert(proc);
                }
                match op.kind {
                    KvOpKind::Put { value } => cluster.write_by(op.client % cfg.w, value),
                    KvOpKind::Get => cluster.read_async(op.client % cfg.r),
                }
            }
            settle(cluster)?;
            batch.waves += 1;
        }
        self.ops_applied += batch.ops;
        Ok(batch)
    }
}

impl fmt::Debug for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard")
            .field("index", &self.index)
            .field("protocol", &self.protocol)
            .field("keys", &self.registers.len())
            .field("ops_applied", &self.ops_applied)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastreg_atomicity::history::RegValue;

    fn shard() -> Shard {
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        Shard::new(0, ProtocolId::FastCrash, cfg, SimConfig::default(), 7)
    }

    #[test]
    fn lazy_registers_and_counters() {
        let mut s = shard();
        assert_eq!(s.key_count(), 0);
        s.apply(&[KvOp::put(0, 10, 1), KvOp::put(0, 20, 1), KvOp::get(1, 10)])
            .unwrap();
        assert_eq!(s.key_count(), 2);
        assert_eq!(s.ops_applied(), 3);
        assert_eq!(s.keys().collect::<Vec<_>>(), vec![10, 20]);
        assert!(s.messages_sent() > 0);
        assert!(s.key_history(10).is_some());
        assert!(s.key_history(99).is_none());
        assert!(format!("{s:?}").contains("fast-crash") || format!("{s:?}").contains("FastCrash"));
    }

    #[test]
    fn keys_are_isolated_registers() {
        let mut s = shard();
        s.apply(&[KvOp::put(0, 1, 11), KvOp::put(0, 2, 22)])
            .unwrap();
        s.apply(&[KvOp::get(0, 1), KvOp::get(1, 2)]).unwrap();
        let read_of = |h: &History| {
            h.reads()
                .filter_map(|o| o.returned)
                .last()
                .expect("one read per key")
        };
        assert_eq!(read_of(&s.key_history(1).unwrap()), RegValue::Val(11));
        assert_eq!(read_of(&s.key_history(2).unwrap()), RegValue::Val(22));
    }

    #[test]
    fn same_client_same_key_conflicts_split_into_waves() {
        let mut s = shard();
        // Client 0 puts twice to one key: two waves; the interleaved get
        // by client 1 shares the first wave.
        let b = s
            .apply(&[KvOp::put(0, 5, 1), KvOp::get(1, 5), KvOp::put(0, 5, 2)])
            .unwrap();
        assert_eq!(b.ops, 3);
        assert_eq!(b.keys, 1);
        assert_eq!(b.waves, 2);
        let h = s.key_history(5).unwrap();
        assert_eq!(h.writes().count(), 2);
        assert_eq!(h.reads().count(), 1);
        assert!(h.complete_ops().count() == 3, "every op completed");
    }

    #[test]
    fn apply_is_deterministic() {
        let run = || {
            let mut s = shard();
            s.apply(&[
                KvOp::put(0, 3, 1),
                KvOp::get(0, 3),
                KvOp::get(1, 3),
                KvOp::put(0, 9, 5),
            ])
            .unwrap();
            (
                s.fingerprint(),
                s.key_history(3).unwrap().render(),
                s.key_history(9).unwrap().render(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn distinct_seeds_give_distinct_worlds() {
        // Under a randomized delay model the store seed must reach each
        // key's world (at constant delay the timed schedule is the same
        // for every seed, so a constant-delay variant would be vacuous).
        use fastreg_simnet::delay::DelayModel;
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        let sim = SimConfig::default().with_delay(DelayModel::Uniform { lo: 1, hi: 50 });
        let fp = |seed: u64| {
            let mut s = Shard::new(0, ProtocolId::FastCrash, cfg, sim.clone(), seed);
            s.apply(&[KvOp::put(0, 1, 1), KvOp::get(0, 1)]).unwrap();
            s.fingerprint()
        };
        assert_eq!(fp(1), fp(1), "same seed, same world");
        assert_ne!(fp(1), fp(2), "the store seed reaches the registers");
    }

    #[test]
    fn stalls_surface_as_typed_errors() {
        // A starvation-level step budget: the settle after injecting the
        // put cannot drain the write broadcast.
        let cfg = ClusterConfig::crash_stop(5, 1, 2).unwrap();
        let sim = SimConfig::default().with_max_steps(1);
        let mut s = Shard::new(3, ProtocolId::FastCrash, cfg, sim, 1);
        let err = s
            .apply(&[KvOp::put(0, 42, 1)])
            .expect_err("a 1-step budget cannot settle a write broadcast");
        let StoreError::ShardStalled { shard, key, .. } = &err;
        assert_eq!((*shard, *key), (3, 42));
        let msg = err.to_string();
        assert!(msg.contains("shard 3") && msg.contains("key 42"), "{msg}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
