//! Process identifiers.

use std::fmt;

/// The transport-level address of a process in a [`World`](crate::world::World)
/// or a [`threaded`](crate::threaded) runtime.
///
/// Identifiers are assigned densely from zero in the order actors are added.
/// Protocol-level role mappings (writer, reader *i*, server *j*) are layered
/// on top by the `fastreg` crate and are not the concern of the transport.
///
/// # Examples
///
/// ```
/// use fastreg_simnet::id::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// A reserved pseudo-address representing the external environment
    /// (operation invocations injected by the test driver arrive "from"
    /// this id).
    pub const EXTERNAL: ProcessId = ProcessId(u32::MAX);

    /// Creates a process id from a dense index.
    pub fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is the reserved external environment id.
    pub fn is_external(self) -> bool {
        self == Self::EXTERNAL
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_external() {
            write!(f, "ext")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for ProcessId {
    fn from(index: u32) -> Self {
        ProcessId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        assert_eq!(ProcessId::new(7).index(), 7);
    }

    #[test]
    fn external_is_flagged() {
        assert!(ProcessId::EXTERNAL.is_external());
        assert!(!ProcessId::new(0).is_external());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ProcessId::new(2)), "p2");
        assert_eq!(format!("{}", ProcessId::EXTERNAL), "ext");
        assert_eq!(format!("{:?}", ProcessId::new(2)), "p2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert!(ProcessId::new(5) < ProcessId::EXTERNAL);
    }

    #[test]
    fn from_u32() {
        let p: ProcessId = 4u32.into();
        assert_eq!(p.index(), 4);
    }
}
