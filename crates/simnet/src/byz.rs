//! Byzantine (arbitrary-failure) actors.
//!
//! The paper's §6 model lets up to `b ≤ t` servers deviate arbitrarily. In
//! the simulator, a Byzantine process is an ordinary actor slot whose
//! automaton is a [`ByzActor`] — a wrapper delegating each step to a
//! [`ByzStrategy`]. Strategies that need protocol knowledge (lying about
//! timestamps, forging `seen` sets, the memory-loss behaviour of the Fig. 6
//! proof) live next to the protocol definitions in the `fastreg` crate;
//! this module provides the wrapper plus protocol-agnostic strategies.

use crate::automaton::{Automaton, Outbox};
use crate::id::ProcessId;

/// Arbitrary per-step behaviour of a Byzantine process.
///
/// A strategy receives exactly what an honest automaton would receive and
/// may emit anything at all — except messages that require credentials it
/// does not hold (unforgeability is enforced by `fastreg-auth`, not by the
/// transport).
pub trait ByzStrategy<M>: Send + 'static {
    /// Handles one delivered message, possibly emitting arbitrary output.
    fn on_message(&mut self, from: ProcessId, msg: M, out: &mut Outbox<M>);

    /// Called once at startup; defaults to doing nothing.
    fn on_start(&mut self, out: &mut Outbox<M>) {
        let _ = out;
    }
}

/// An actor wholly controlled by a [`ByzStrategy`].
pub struct ByzActor<M> {
    strategy: Box<dyn ByzStrategy<M>>,
}

impl<M> ByzActor<M> {
    /// Wraps a strategy as an actor.
    pub fn new(strategy: Box<dyn ByzStrategy<M>>) -> Self {
        ByzActor { strategy }
    }
}

impl<M: Clone + std::fmt::Debug + Send + 'static> Automaton for ByzActor<M> {
    type Msg = M;

    fn on_start(&mut self, out: &mut Outbox<M>) {
        self.strategy.on_start(out);
    }

    fn on_message(&mut self, from: ProcessId, msg: M, out: &mut Outbox<M>) {
        self.strategy.on_message(from, msg, out);
    }
}

/// Never replies to anything. Indistinguishable from a crashed process to
/// the rest of the system, which makes it the *mildest* Byzantine behaviour
/// — useful as a baseline in behaviour sweeps.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mute;

impl<M: Send + 'static> ByzStrategy<M> for Mute {
    fn on_message(&mut self, _from: ProcessId, _msg: M, _out: &mut Outbox<M>) {}
}

/// Echoes every message straight back to its sender, any number of times.
/// Exercises receivers' tolerance of duplicate-looking and nonsensical
/// traffic.
#[derive(Clone, Copy, Debug)]
pub struct EchoStorm {
    /// How many copies to send back per received message.
    pub copies: usize,
}

impl<M: Clone + Send + 'static> ByzStrategy<M> for EchoStorm {
    fn on_message(&mut self, from: ProcessId, msg: M, out: &mut Outbox<M>) {
        for _ in 0..self.copies {
            out.send(from, msg.clone());
        }
    }
}

/// Replays the first message it ever received, to every sender of every
/// later message. Exercises stale-reply handling.
#[derive(Debug, Default)]
pub struct ReplayFirst<M> {
    first: Option<M>,
}

impl<M> ReplayFirst<M> {
    /// Creates a strategy with no recorded message yet.
    pub fn new() -> Self {
        ReplayFirst { first: None }
    }
}

impl<M: Clone + Send + 'static> ByzStrategy<M> for ReplayFirst<M> {
    fn on_message(&mut self, from: ProcessId, msg: M, out: &mut Outbox<M>) {
        match &self.first {
            None => self.first = Some(msg),
            Some(first) => out.send(from, first.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SimConfig;
    use crate::world::World;

    #[derive(Clone, Debug, PartialEq)]
    struct N(u32);

    struct Probe {
        got: Vec<N>,
    }

    impl Automaton for Probe {
        type Msg = N;
        fn on_message(&mut self, _from: ProcessId, msg: N, _out: &mut Outbox<N>) {
            self.got.push(msg);
        }
    }

    fn setup(strategy: Box<dyn ByzStrategy<N>>) -> (World<N>, ProcessId, ProcessId) {
        let mut w = World::new(SimConfig::default());
        let probe = w.add_actor(Box::new(Probe { got: vec![] }));
        let byz = w.add_actor(Box::new(ByzActor::new(strategy)));
        (w, probe, byz)
    }

    #[test]
    fn mute_never_replies() {
        let (mut w, probe, byz) = setup(Box::new(Mute));
        w.send_from_external(probe, byz, N(1));
        w.run_until_quiescent_or_panic();
        assert!(w
            .with_actor::<Probe, _, _>(probe, |p| p.got.is_empty())
            .unwrap());
    }

    #[test]
    fn echo_storm_floods() {
        let (mut w, probe, byz) = setup(Box::new(EchoStorm { copies: 3 }));
        w.send_from_external(probe, byz, N(7));
        w.run_until_quiescent_or_panic();
        assert_eq!(
            w.with_actor::<Probe, _, _>(probe, |p| p.got.clone())
                .unwrap(),
            vec![N(7), N(7), N(7)]
        );
    }

    #[test]
    fn replay_first_repeats_initial_message() {
        let (mut w, probe, byz) = setup(Box::new(ReplayFirst::new()));
        w.send_from_external(probe, byz, N(1)); // recorded, no reply
        w.send_from_external(probe, byz, N(2)); // replies with N(1)
        w.send_from_external(probe, byz, N(3)); // replies with N(1)
        w.run_until_quiescent_or_panic();
        assert_eq!(
            w.with_actor::<Probe, _, _>(probe, |p| p.got.clone())
                .unwrap(),
            vec![N(1), N(1)]
        );
    }
}
