//! The simulated world: actors, the in-transit message set, and steps.
//!
//! Delivery is organized around two data structures: the authoritative
//! in-transit map `mset` (every envelope, addressable by id — the
//! scripted/adversarial API works on this) and the [`sched::ReadyQueue`]
//! index the *timed* scheduler pops from in O(log n) per step. Both
//! driving styles funnel into one internal delivery path, so traces,
//! statistics and actor steps are identical whichever style (or mix)
//! drives a run.

pub mod sched;

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use rand::SeedableRng;

use crate::automaton::{Automaton, Outbox};
use crate::envelope::{Envelope, MsgId};
use crate::fault::CrashState;
use crate::id::ProcessId;
use crate::runner::SimConfig;
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::trace::{DropReason, Trace, TraceEntry};

use sched::ReadyQueue;
pub use sched::{QuiescenceError, SchedStats};

/// Error returned by scripted delivery operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliverError {
    /// No in-transit message has the requested id.
    UnknownMessage(MsgId),
    /// The receiver has crashed and cannot take a step.
    ReceiverCrashed(ProcessId),
}

impl fmt::Display for DeliverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliverError::UnknownMessage(id) => write!(f, "no in-transit message {id}"),
            DeliverError::ReceiverCrashed(p) => write!(f, "receiver {p} has crashed"),
        }
    }
}

impl std::error::Error for DeliverError {}

struct Slot<M> {
    automaton: Box<dyn Automaton<Msg = M>>,
    crash: CrashState,
}

/// The paper's system (§2.2) made executable: a set of automata, the
/// in-transit message set `mset`, and a clock.
///
/// A `World` supports two driving styles, freely mixable in one run:
///
/// * **Timed**: [`World::run_until_quiescent`] and [`World::step_timed`]
///   deliver messages in virtual-time order according to the configured
///   [`DelayModel`](crate::delay::DelayModel), popping from the
///   [`sched::ReadyQueue`] index.
/// * **Scripted**: [`World::deliver`], [`World::deliver_set`],
///   [`World::deliver_matching`] give a driver complete control over which
///   messages are delivered and which stay in transit — exactly the power
///   the paper's lower-bound adversary has. Scripted removals leave their
///   index entries behind; the timed scheduler discards them lazily (see
///   the [`sched`] docs for the invalidation rules).
///
/// See the crate-level docs for an end-to-end example.
pub struct World<M> {
    slots: Vec<Slot<M>>,
    mset: BTreeMap<MsgId, Envelope<M>>,
    /// The timed scheduler's index over `mset` (lazy invalidation).
    ready: ReadyQueue,
    next_msg_id: u64,
    now: SimTime,
    rng: StdRng,
    config: SimConfig,
    trace: Trace,
    stats: NetStats,
    /// Directed links currently blocked: messages on them stay in transit
    /// for the timed and random schedulers (scripted delivery can still
    /// force them through — the adversary outranks the network).
    /// Insert/remove/contains only — never iterated, so its internal
    /// order cannot reach a trace or verdict.
    #[allow(clippy::disallowed_types)]
    // fastreg-lint: allow(nondet-order): membership set, insert/remove/contains only, never iterated
    blocked_links: std::collections::HashSet<(ProcessId, ProcessId)>,
}

impl<M: Clone + fmt::Debug + Send + 'static> World<M> {
    /// Creates an empty world with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        World {
            slots: Vec::new(),
            mset: BTreeMap::new(),
            ready: ReadyQueue::new(),
            next_msg_id: 0,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
            trace: Trace::with_capacity(config.trace_capacity),
            stats: NetStats::new(),
            config,
            // fastreg-lint: allow(nondet-order): same membership set as the field above
            #[allow(clippy::disallowed_types)]
            blocked_links: std::collections::HashSet::new(),
        }
    }

    /// Adds an actor and runs its `on_start` hook at the current time.
    ///
    /// Returns the id assigned to the actor (dense, in insertion order).
    pub fn add_actor(&mut self, automaton: Box<dyn Automaton<Msg = M>>) -> ProcessId {
        let id = ProcessId::new(self.slots.len() as u32);
        self.slots.push(Slot {
            automaton,
            crash: CrashState::Up,
        });
        let mut out = Outbox::new(id, self.now);
        self.slots[id.index() as usize].automaton.on_start(&mut out);
        self.absorb_outbox(id, out);
        id
    }

    /// Number of actors in the world.
    pub fn num_actors(&self) -> usize {
        self.slots.len()
    }

    /// All actor ids, in insertion order.
    pub fn actor_ids(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.slots.len() as u32).map(ProcessId::new)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Lifetime counters of the timed scheduler's ready-queue index
    /// (pushes, pops, parks, heals, heap high-water).
    pub fn sched_stats(&self) -> sched::SchedStats {
        self.ready.stats()
    }

    /// The world's seeded random source, for drivers that need reproducible
    /// randomness coupled to the world seed.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Borrows the typed state of actor `p`, if it is a `T`.
    ///
    /// Returns `None` if the id is out of range or the actor is not a `T`.
    pub fn with_actor<T: 'static, R, F: FnOnce(&T) -> R>(&self, p: ProcessId, f: F) -> Option<R> {
        self.slots
            .get(p.index() as usize)
            .and_then(|s| s.automaton.as_any().downcast_ref::<T>())
            .map(f)
    }

    /// Mutably borrows the typed state of actor `p`, if it is a `T`.
    pub fn with_actor_mut<T: 'static, R, F: FnOnce(&mut T) -> R>(
        &mut self,
        p: ProcessId,
        f: F,
    ) -> Option<R> {
        self.slots
            .get_mut(p.index() as usize)
            .and_then(|s| s.automaton.as_any_mut().downcast_mut::<T>())
            .map(f)
    }

    // ---------------------------------------------------------------- faults

    /// Crashes `p` immediately. Messages already in transit from `p` stay in
    /// transit; `p` takes no further steps.
    pub fn crash(&mut self, p: ProcessId) {
        if let Some(slot) = self.slots.get_mut(p.index() as usize) {
            if slot.crash.is_up() {
                slot.crash = CrashState::Down(self.now);
                self.trace.record(TraceEntry::Crash {
                    at: self.now,
                    process: p,
                    sent_before_crash: 0,
                });
            }
        }
    }

    /// Arms a mid-broadcast crash: during `p`'s next step, only the first
    /// `k` messages it emits are sent; then `p` crashes.
    pub fn arm_crash_after_sends(&mut self, p: ProcessId, k: usize) {
        if let Some(slot) = self.slots.get_mut(p.index() as usize) {
            if slot.crash.is_up() {
                slot.crash = CrashState::Armed(k);
            }
        }
    }

    /// Returns `true` if `p` has crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.slots
            .get(p.index() as usize)
            .map(|s| !s.crash.is_up())
            .unwrap_or(false)
    }

    /// Crash time of `p`, if it crashed.
    pub fn crashed_at(&self, p: ProcessId) -> Option<SimTime> {
        self.slots
            .get(p.index() as usize)
            .and_then(|s| s.crash.crashed_at())
    }

    // ------------------------------------------------------------ partitions

    /// Blocks the directed link `from → to`: messages on it (current and
    /// future) stay in transit under the timed and random schedulers until
    /// [`World::heal_link`] — the paper's "in transit" made persistent.
    /// Scripted delivery ignores blocks.
    pub fn block_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked_links.insert((from, to));
    }

    /// Unblocks a directed link; messages parked on it become deliverable
    /// again (their index entries are re-queued).
    pub fn heal_link(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked_links.remove(&(from, to));
        self.ready.heal((from, to));
    }

    /// Partitions two groups of processes from each other in both
    /// directions.
    pub fn partition(&mut self, group_a: &[ProcessId], group_b: &[ProcessId]) {
        for &a in group_a {
            for &b in group_b {
                self.block_link(a, b);
                self.block_link(b, a);
            }
        }
    }

    /// Heals a two-group partition.
    pub fn heal_partition(&mut self, group_a: &[ProcessId], group_b: &[ProcessId]) {
        for &a in group_a {
            for &b in group_b {
                self.heal_link(a, b);
                self.heal_link(b, a);
            }
        }
    }

    /// Returns `true` if the directed link is currently blocked.
    pub fn is_link_blocked(&self, from: ProcessId, to: ProcessId) -> bool {
        self.blocked_links.contains(&(from, to))
    }

    // ----------------------------------------------------------- injections

    /// Injects a message from the environment into `to`, executing one step
    /// of `to` immediately at the current time.
    ///
    /// This is how operation invocations reach client automata. The message
    /// arrives with `from == ProcessId::EXTERNAL`. If `to` has crashed the
    /// injection is ignored.
    pub fn inject(&mut self, to: ProcessId, msg: M) {
        if self.is_crashed(to) {
            return;
        }
        self.trace.record(TraceEntry::Inject {
            at: self.now,
            to,
            payload: format!("{msg:?}"),
        });
        self.stats.record_injection();
        self.step_actor(to, ProcessId::EXTERNAL, msg);
    }

    /// Places an envelope in transit from `from` to `to` without `from`
    /// taking a step. Useful for tests that need hand-crafted traffic.
    pub fn send_from_external(&mut self, from: ProcessId, to: ProcessId, msg: M) -> MsgId {
        self.enqueue(from, to, msg)
    }

    // ----------------------------------------------------- scripted control

    /// All in-transit envelopes, in send order.
    pub fn pending(&self) -> impl Iterator<Item = &Envelope<M>> {
        self.mset.values()
    }

    /// Number of in-transit messages.
    pub fn pending_len(&self) -> usize {
        self.mset.len()
    }

    /// Ids of in-transit envelopes satisfying `pred`, in send order.
    pub fn pending_ids_matching<F: Fn(&Envelope<M>) -> bool>(&self, pred: F) -> Vec<MsgId> {
        self.mset
            .values()
            .filter(|e| pred(e))
            .map(|e| e.id)
            .collect()
    }

    /// Delivers one in-transit message as a step `<to, {m}>` of its
    /// receiver, at the current time.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown or the receiver has crashed (a crashed
    /// process takes no steps; the message would stay in transit).
    pub fn deliver(&mut self, id: MsgId) -> Result<(), DeliverError> {
        let to = self
            .mset
            .get(&id)
            .map(|e| e.to)
            .ok_or(DeliverError::UnknownMessage(id))?;
        if self.is_crashed(to) {
            return Err(DeliverError::ReceiverCrashed(to));
        }
        let env = self.mset.remove(&id).expect("looked up above");
        self.deliver_env(env);
        Ok(())
    }

    /// Delivers a set of messages to one receiver as a single step
    /// `<to, M>` (the paper allows steps to consume message sets).
    ///
    /// # Errors
    ///
    /// Fails without delivering anything if any id is unknown, any message
    /// is not addressed to `to`, or `to` has crashed.
    pub fn deliver_set(&mut self, to: ProcessId, ids: &[MsgId]) -> Result<(), DeliverError> {
        if self.is_crashed(to) {
            return Err(DeliverError::ReceiverCrashed(to));
        }
        for id in ids {
            match self.mset.get(id) {
                None => return Err(DeliverError::UnknownMessage(*id)),
                Some(e) if e.to != to => return Err(DeliverError::UnknownMessage(*id)),
                Some(_) => {}
            }
        }
        for id in ids {
            // Receiver may crash mid-set via an armed fault; remaining
            // messages then stay in transit, matching the model.
            if self.is_crashed(to) {
                break;
            }
            self.deliver(*id).expect("validated above");
        }
        Ok(())
    }

    /// Delivers every currently in-transit message matching `pred`, in send
    /// order, skipping messages to crashed receivers. Messages *sent as a
    /// consequence* of these deliveries are not themselves delivered.
    ///
    /// Returns the number of messages delivered.
    pub fn deliver_matching<F: Fn(&Envelope<M>) -> bool>(&mut self, pred: F) -> usize {
        let ids = self.pending_ids_matching(pred);
        let mut delivered = 0;
        for id in ids {
            if self.deliver(id).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }

    /// Delivers every in-transit message addressed to `to` (snapshot).
    pub fn deliver_all_to(&mut self, to: ProcessId) -> usize {
        self.deliver_matching(|e| e.to == to)
    }

    /// Delivers every in-transit message from `from` to `to` (snapshot).
    pub fn deliver_between(&mut self, from: ProcessId, to: ProcessId) -> usize {
        self.deliver_matching(|e| e.is_between(from, to))
    }

    /// Drops (discards) every in-transit message matching `pred`.
    ///
    /// Reliable channels never lose messages on their own; this exists for
    /// adversarial scripts. Returns the number dropped.
    pub fn drop_matching<F: Fn(&Envelope<M>) -> bool>(&mut self, pred: F) -> usize {
        let ids = self.pending_ids_matching(pred);
        for id in &ids {
            self.mset.remove(id);
            self.trace.record(TraceEntry::Drop {
                at: self.now,
                id: *id,
                reason: DropReason::Scripted,
            });
            self.stats.record_drop();
        }
        ids.len()
    }

    /// Advances the clock to `t` without delivering anything.
    ///
    /// Does nothing if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    // -------------------------------------------------------- timed running

    /// Pops the next valid, unblocked index entry: stale entries (scripted
    /// removals, drops) are discarded, entries on blocked links are parked
    /// until [`World::heal_link`].
    fn pop_next_unblocked(&mut self) -> Option<(MsgId, SimTime)> {
        while let Some((ready_at, id)) = self.ready.pop() {
            let Some(env) = self.mset.get(&id) else {
                continue; // stale: already delivered or dropped
            };
            let link = (env.from, env.to);
            if self.blocked_links.contains(&link) {
                self.ready.park(link, (ready_at, id));
                continue;
            }
            return Some((id, ready_at));
        }
        None
    }

    /// Earliest ready time among deliverable messages (unblocked *and*
    /// addressed to a live receiver), without delivering or dropping
    /// anything. Entries popped while peeking are re-queued.
    fn next_ready_deliverable(&mut self) -> Option<SimTime> {
        // Fast path: the heap top is usually live, so peek without the
        // pop/re-push round trip (and its scratch Vec).
        if let Some((ready_at, id)) = self.ready.peek() {
            if let Some(env) = self.mset.get(&id) {
                if !self.blocked_links.contains(&(env.from, env.to)) && !self.is_crashed(env.to) {
                    return Some(ready_at);
                }
            }
        }
        let mut popped: Vec<(SimTime, MsgId)> = Vec::new();
        let mut found = None;
        while let Some((id, ready_at)) = self.pop_next_unblocked() {
            popped.push((ready_at, id));
            let to = self.mset.get(&id).expect("validated by pop").to;
            if !self.is_crashed(to) {
                found = Some(ready_at);
                break;
            }
        }
        for (ready_at, id) in popped {
            self.ready.push(ready_at, id);
        }
        found
    }

    /// Delivers the next message in virtual-time order, advancing the clock
    /// to its ready time. Messages to crashed receivers are dropped (they
    /// would never be consumed).
    ///
    /// Returns `false` if nothing was deliverable.
    ///
    /// This pops the [`sched::ReadyQueue`] index — O(log n) in the
    /// in-transit pool size — rather than scanning `mset`.
    pub fn step_timed(&mut self) -> bool {
        while let Some((id, ready_at)) = self.pop_next_unblocked() {
            if ready_at > self.now {
                self.now = ready_at;
            }
            let env = self.mset.remove(&id).expect("validated by pop");
            if self.is_crashed(env.to) {
                self.trace.record(TraceEntry::Drop {
                    at: self.now,
                    id,
                    reason: DropReason::ReceiverCrashed,
                });
                self.stats.record_drop();
                continue;
            }
            self.deliver_env(env);
            return true;
        }
        false
    }

    /// Reference implementation of [`World::step_timed`] that rescans the
    /// whole of `mset` per delivery (the pre-index behaviour). Kept for
    /// the scheduler-equivalence property suite, which asserts both
    /// produce byte-identical traces; not meant for production drivers.
    #[doc(hidden)]
    pub fn step_timed_reference(&mut self) -> bool {
        loop {
            let next = self
                .mset
                .values()
                .filter(|e| !self.blocked_links.contains(&(e.from, e.to)))
                .min_by_key(|e| (e.ready_at, e.id))
                .map(|e| (e.id, e.to, e.ready_at));
            let Some((id, to, ready_at)) = next else {
                return false;
            };
            if ready_at > self.now {
                self.now = ready_at;
            }
            let env = self.mset.remove(&id).expect("selected from mset");
            if self.is_crashed(to) {
                self.trace.record(TraceEntry::Drop {
                    at: self.now,
                    id,
                    reason: DropReason::ReceiverCrashed,
                });
                self.stats.record_drop();
                continue;
            }
            self.deliver_env(env);
            return true;
        }
    }

    /// Runs timed steps until no message is deliverable or the step budget
    /// ([`SimConfig::max_steps`]) is exhausted.
    ///
    /// Returns the number of steps taken.
    ///
    /// # Errors
    ///
    /// Returns a [`QuiescenceError`] if the budget is exhausted while
    /// messages remain deliverable — that indicates a protocol that never
    /// quiesces, which is a bug in the caller's setup rather than a
    /// legitimate outcome. Callers that treat it as such can use
    /// [`World::run_until_quiescent_or_panic`].
    pub fn run_until_quiescent(&mut self) -> Result<u64, QuiescenceError> {
        let mut steps = 0;
        while steps < self.config.max_steps {
            if !self.step_timed() {
                return Ok(steps);
            }
            steps += 1;
        }
        if self
            .mset
            .values()
            .any(|e| !self.is_crashed(e.to) && !self.blocked_links.contains(&(e.from, e.to)))
        {
            return Err(QuiescenceError {
                steps,
                in_transit: self.mset.len(),
            });
        }
        Ok(steps)
    }

    /// [`World::run_until_quiescent`], panicking on budget exhaustion —
    /// the convenient form for tests and for drivers whose protocols are
    /// known to quiesce.
    ///
    /// # Panics
    ///
    /// Panics with the [`QuiescenceError`] message if the step budget is
    /// exhausted while messages remain deliverable.
    pub fn run_until_quiescent_or_panic(&mut self) -> u64 {
        match self.run_until_quiescent() {
            Ok(steps) => steps,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs timed steps while the next deliverable message is ready at or
    /// before `deadline`. The clock never passes `deadline`.
    ///
    /// Returns the number of steps taken.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut steps = 0;
        while steps < self.config.max_steps {
            match self.next_ready_deliverable() {
                Some(t) if t <= deadline => {
                    self.step_timed();
                    steps += 1;
                }
                _ => break,
            }
        }
        self.advance_to(deadline);
        steps
    }

    /// Reference implementation of [`World::run_until`] over the linear
    /// scan (see [`World::step_timed_reference`]); property-test only.
    #[doc(hidden)]
    pub fn run_until_reference(&mut self, deadline: SimTime) -> u64 {
        let mut steps = 0;
        while steps < self.config.max_steps {
            let next_ready = self
                .mset
                .values()
                .filter(|e| !self.is_crashed(e.to) && !self.blocked_links.contains(&(e.from, e.to)))
                .map(|e| e.ready_at)
                .min();
            match next_ready {
                Some(t) if t <= deadline => {
                    self.step_timed_reference();
                    steps += 1;
                }
                _ => break,
            }
        }
        self.advance_to(deadline);
        steps
    }

    /// Delivers one uniformly random deliverable in-transit message,
    /// ignoring ready times (pure interleaving exploration; the clock still
    /// advances by one tick per step so histories have distinct times).
    ///
    /// Returns `false` if nothing was deliverable.
    pub fn step_random(&mut self) -> bool {
        let crashed: Vec<bool> = self.slots.iter().map(|s| !s.crash.is_up()).collect();
        let blocked = &self.blocked_links;
        let choice = self
            .mset
            .values()
            .filter(|e| {
                !crashed.get(e.to.index() as usize).copied().unwrap_or(false)
                    && !blocked.contains(&(e.from, e.to))
            })
            .map(|e| e.id)
            .choose(&mut self.rng);
        match choice {
            Some(id) => {
                self.now += 1;
                self.deliver(id).expect("selected deliverable");
                true
            }
            None => false,
        }
    }

    /// Runs random steps until nothing is deliverable or the step budget is
    /// exhausted. Returns the number of steps taken.
    pub fn run_random_until_quiescent(&mut self) -> u64 {
        let mut steps = 0;
        while steps < self.config.max_steps {
            if !self.step_random() {
                return steps;
            }
            steps += 1;
        }
        steps
    }

    // ------------------------------------------------------------ internals

    fn enqueue(&mut self, from: ProcessId, to: ProcessId, msg: M) -> MsgId {
        let id = MsgId(self.next_msg_id);
        self.next_msg_id += 1;
        let delay = self.config.delay.sample(from, to, &mut self.rng);
        let env = Envelope {
            id,
            from,
            to,
            sent_at: self.now,
            ready_at: self.now + delay,
            msg,
        };
        self.trace.record(TraceEntry::Send {
            at: self.now,
            id,
            from,
            to,
            payload: format!("{:?}", env.msg),
        });
        self.stats.record_send(from);
        self.ready.push(env.ready_at, id);
        self.mset.insert(id, env);
        id
    }

    /// The single delivery path shared by the timed, random and scripted
    /// styles: trace, stats, then the receiver's step. The envelope must
    /// already be out of `mset` (any index entry left behind for it is
    /// handled by lazy invalidation).
    fn deliver_env(&mut self, env: Envelope<M>) {
        self.trace.record(TraceEntry::Deliver {
            at: self.now,
            id: env.id,
            from: env.from,
            to: env.to,
        });
        self.stats.record_delivery(env.to);
        self.step_actor(env.to, env.from, env.msg);
    }

    fn step_actor(&mut self, p: ProcessId, from: ProcessId, msg: M) {
        let mut out = Outbox::new(p, self.now);
        self.slots[p.index() as usize]
            .automaton
            .on_message(from, msg, &mut out);
        self.absorb_outbox(p, out);
    }

    fn absorb_outbox(&mut self, p: ProcessId, out: Outbox<M>) {
        let mut msgs = out.into_messages();
        let slot = &mut self.slots[p.index() as usize];
        if let CrashState::Armed(k) = slot.crash {
            let kept = k.min(msgs.len());
            msgs.truncate(kept);
            slot.crash = CrashState::Down(self.now);
            self.trace.record(TraceEntry::Crash {
                at: self.now,
                process: p,
                sent_before_crash: kept,
            });
        }
        for (to, msg) in msgs {
            self.enqueue(p, to, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Hello,
        ReplyAll,
        Ack,
    }

    /// Replies `Ack` to `Hello`; on `ReplyAll`, broadcasts `Hello` to every
    /// other process id below `n`.
    struct Node {
        n: u32,
        acks: usize,
        hellos: usize,
    }

    impl Node {
        fn new(n: u32) -> Self {
            Node {
                n,
                acks: 0,
                hellos: 0,
            }
        }
    }

    impl Automaton for Node {
        type Msg = Msg;

        fn on_message(&mut self, from: ProcessId, msg: Msg, out: &mut Outbox<Msg>) {
            match msg {
                Msg::Hello => {
                    self.hellos += 1;
                    out.send(from, Msg::Ack);
                }
                Msg::Ack => self.acks += 1,
                Msg::ReplyAll => {
                    let me = out.this();
                    out.broadcast(
                        (0..self.n).map(ProcessId::new).filter(|&q| q != me),
                        Msg::Hello,
                    );
                }
            }
        }
    }

    fn world_of(n: u32) -> (World<Msg>, Vec<ProcessId>) {
        let mut w = World::new(SimConfig::default());
        let ids = (0..n)
            .map(|_| w.add_actor(Box::new(Node::new(n))))
            .collect();
        (w, ids)
    }

    #[test]
    fn inject_and_quiesce() {
        let (mut w, ids) = world_of(4);
        w.inject(ids[0], Msg::ReplyAll);
        let steps = w.run_until_quiescent_or_panic();
        // 3 hellos + 3 acks delivered.
        assert_eq!(steps, 6);
        assert_eq!(w.with_actor::<Node, _, _>(ids[0], |n| n.acks).unwrap(), 3);
        for &r in &ids[1..] {
            assert_eq!(w.with_actor::<Node, _, _>(r, |n| n.hellos).unwrap(), 1);
        }
        assert_eq!(w.stats().sent, 6);
        assert_eq!(w.stats().delivered, 6);
        assert_eq!(w.stats().in_transit(), 0);
    }

    #[test]
    fn scripted_delivery_controls_order() {
        let (mut w, ids) = world_of(3);
        w.inject(ids[0], Msg::ReplyAll);
        // Two hellos in transit; deliver only the one to ids[2].
        let to2 = w.pending_ids_matching(|e| e.to == ids[2]);
        assert_eq!(to2.len(), 1);
        w.deliver(to2[0]).unwrap();
        assert_eq!(w.with_actor::<Node, _, _>(ids[2], |n| n.hellos).unwrap(), 1);
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 0);
        // The hello to ids[1] and the ack from ids[2] are still in transit.
        assert_eq!(w.pending_len(), 2);
    }

    #[test]
    fn timed_steps_skip_entries_invalidated_by_scripted_delivery() {
        // Scripted delivery leaves stale index entries behind; the timed
        // scheduler must discard them and still deliver everything else.
        let (mut w, ids) = world_of(3);
        w.inject(ids[0], Msg::ReplyAll);
        let to2 = w.pending_ids_matching(|e| e.to == ids[2]);
        w.deliver(to2[0]).unwrap();
        let steps = w.run_until_quiescent_or_panic();
        // hello->p1, ack(p2)->p0, ack(p1)->p0.
        assert_eq!(steps, 3);
        assert_eq!(w.pending_len(), 0);
        assert_eq!(w.stats().delivered, 4);
    }

    #[test]
    fn deliver_unknown_id_fails() {
        let (mut w, _) = world_of(2);
        assert_eq!(
            w.deliver(MsgId(99)),
            Err(DeliverError::UnknownMessage(MsgId(99)))
        );
    }

    #[test]
    fn crash_stops_steps_and_drops_timed_deliveries() {
        let (mut w, ids) = world_of(3);
        w.inject(ids[0], Msg::ReplyAll);
        w.crash(ids[1]);
        let steps = w.run_until_quiescent_or_panic();
        // hello->p2, ack->p0 delivered; hello->p1 dropped.
        assert_eq!(steps, 2);
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 0);
        assert_eq!(w.stats().dropped, 1);
        assert!(w.is_crashed(ids[1]));
        assert!(w.crashed_at(ids[1]).is_some());
    }

    #[test]
    fn scripted_deliver_to_crashed_receiver_fails() {
        let (mut w, ids) = world_of(3);
        w.inject(ids[0], Msg::ReplyAll);
        let to1 = w.pending_ids_matching(|e| e.to == ids[1]);
        w.crash(ids[1]);
        assert_eq!(
            w.deliver(to1[0]),
            Err(DeliverError::ReceiverCrashed(ids[1]))
        );
        // Message stays in transit (paper semantics).
        assert_eq!(w.pending_len(), 2);
    }

    #[test]
    fn injection_to_crashed_actor_is_ignored() {
        let (mut w, ids) = world_of(2);
        w.crash(ids[0]);
        w.inject(ids[0], Msg::ReplyAll);
        assert_eq!(w.pending_len(), 0);
    }

    #[test]
    fn mid_broadcast_crash_sends_prefix_only() {
        let (mut w, ids) = world_of(5);
        w.arm_crash_after_sends(ids[0], 2);
        w.inject(ids[0], Msg::ReplyAll);
        // Broadcast to 4 peers truncated to 2 messages.
        assert_eq!(w.pending_len(), 2);
        assert!(w.is_crashed(ids[0]));
        let tos: Vec<ProcessId> = w.pending().map(|e| e.to).collect();
        assert_eq!(tos, vec![ids[1], ids[2]]);
    }

    #[test]
    fn mid_broadcast_crash_with_zero_sends() {
        let (mut w, ids) = world_of(3);
        w.arm_crash_after_sends(ids[0], 0);
        w.inject(ids[0], Msg::ReplyAll);
        assert_eq!(w.pending_len(), 0);
        assert!(w.is_crashed(ids[0]));
    }

    #[test]
    fn deliver_set_is_all_or_nothing_on_validation() {
        let (mut w, ids) = world_of(3);
        w.inject(ids[0], Msg::ReplyAll);
        let all: Vec<MsgId> = w.pending().map(|e| e.id).collect();
        // Mixed receivers: must fail.
        assert!(w.deliver_set(ids[1], &all).is_err());
        assert_eq!(w.pending_len(), 2);
        // Correct receiver: ok.
        let to1 = w.pending_ids_matching(|e| e.to == ids[1]);
        w.deliver_set(ids[1], &to1).unwrap();
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 1);
    }

    #[test]
    fn deliver_matching_snapshot_does_not_chase_new_sends() {
        let (mut w, ids) = world_of(3);
        w.inject(ids[0], Msg::ReplyAll);
        // Delivering the hellos triggers acks, which must not be delivered
        // by the same call.
        let n = w.deliver_matching(|e| matches!(e.msg, Msg::Hello));
        assert_eq!(n, 2);
        assert_eq!(w.pending_len(), 2); // the two acks
        assert!(w.pending().all(|e| matches!(e.msg, Msg::Ack)));
    }

    #[test]
    fn drop_matching_discards() {
        let (mut w, ids) = world_of(3);
        w.inject(ids[0], Msg::ReplyAll);
        let n = w.drop_matching(|e| e.to == ids[1]);
        assert_eq!(n, 1);
        assert_eq!(w.pending_len(), 1);
        assert_eq!(w.stats().dropped, 1);
    }

    #[test]
    fn timed_clock_advances_with_delay_model() {
        let mut w: World<Msg> = World::new(SimConfig {
            delay: DelayModel::Constant(10),
            ..SimConfig::default()
        });
        let a = w.add_actor(Box::new(Node::new(2)));
        let b = w.add_actor(Box::new(Node::new(2)));
        w.send_from_external(a, b, Msg::Hello);
        assert_eq!(w.now(), SimTime::ZERO);
        w.step_timed();
        assert_eq!(w.now(), SimTime::from_ticks(10));
        // Ack goes back with another 10 ticks of delay.
        w.run_until_quiescent_or_panic();
        assert_eq!(w.now(), SimTime::from_ticks(20));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut w: World<Msg> = World::new(SimConfig {
            delay: DelayModel::Constant(10),
            ..SimConfig::default()
        });
        let a = w.add_actor(Box::new(Node::new(2)));
        let b = w.add_actor(Box::new(Node::new(2)));
        w.send_from_external(a, b, Msg::Hello);
        let steps = w.run_until(SimTime::from_ticks(5));
        assert_eq!(steps, 0);
        assert_eq!(w.now(), SimTime::from_ticks(5));
        let steps = w.run_until(SimTime::from_ticks(10));
        assert_eq!(steps, 1);
    }

    #[test]
    fn run_until_peek_does_not_lose_or_drop_messages() {
        // The deadline peek pops index entries to find the next
        // deliverable message; everything popped must be re-queued, and
        // messages to crashed receivers must be neither delivered nor
        // dropped by the peek itself.
        let mut w: World<Msg> = World::new(SimConfig {
            delay: DelayModel::Constant(10),
            ..SimConfig::default()
        });
        let a = w.add_actor(Box::new(Node::new(3)));
        let b = w.add_actor(Box::new(Node::new(3)));
        let c = w.add_actor(Box::new(Node::new(3)));
        w.send_from_external(a, b, Msg::Hello); // ready at 10
        w.crash(b);
        w.advance_to(SimTime::from_ticks(15));
        w.send_from_external(a, c, Msg::Hello); // ready at 25
        assert_eq!(w.run_until(SimTime::from_ticks(20)), 0);
        assert_eq!(w.stats().dropped, 0, "peek must not drop");
        assert_eq!(w.pending_len(), 2, "peek must not lose messages");
        // Past the deadline, the crashed receiver's message is dropped on
        // the way to the live one.
        assert_eq!(w.run_until(SimTime::from_ticks(30)), 1);
        assert_eq!(w.stats().dropped, 1);
        assert_eq!(w.with_actor::<Node, _, _>(c, |n| n.hellos).unwrap(), 1);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed: u64| {
            let mut w: World<Msg> = World::new(SimConfig {
                seed,
                delay: DelayModel::Uniform { lo: 1, hi: 50 },
                ..SimConfig::default()
            });
            let ids: Vec<ProcessId> = (0..4)
                .map(|_| w.add_actor(Box::new(Node::new(4))))
                .collect();
            w.inject(ids[0], Msg::ReplyAll);
            w.run_until_quiescent_or_panic();
            w.trace().render()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_stepping_quiesces() {
        let (mut w, ids) = world_of(6);
        w.inject(ids[0], Msg::ReplyAll);
        let steps = w.run_random_until_quiescent();
        assert_eq!(steps, 10); // 5 hellos + 5 acks
        assert_eq!(w.with_actor::<Node, _, _>(ids[0], |n| n.acks).unwrap(), 5);
    }

    #[test]
    fn with_actor_wrong_type_is_none() {
        let (w, ids) = world_of(2);
        assert!(w.with_actor::<String, _, _>(ids[0], |_| ()).is_none());
    }

    #[test]
    fn with_actor_out_of_range_is_none() {
        let (w, _) = world_of(2);
        assert!(w
            .with_actor::<Node, _, _>(ProcessId::new(99), |_| ())
            .is_none());
    }

    #[test]
    fn actor_ids_enumerates() {
        let (w, ids) = world_of(3);
        let listed: Vec<ProcessId> = w.actor_ids().collect();
        assert_eq!(listed, ids);
        assert_eq!(w.num_actors(), 3);
    }

    #[test]
    fn blocked_links_park_messages() {
        let (mut w, ids) = world_of(3);
        w.block_link(ids[0], ids[1]);
        w.inject(ids[0], Msg::ReplyAll);
        let steps = w.run_until_quiescent_or_panic();
        // Only the hello to ids[2] and its ack flow; the hello to ids[1]
        // stays in transit (not dropped).
        assert_eq!(steps, 2);
        assert_eq!(w.pending_len(), 1);
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 0);
        assert!(w.is_link_blocked(ids[0], ids[1]));

        // Healing releases the parked message.
        w.heal_link(ids[0], ids[1]);
        w.run_until_quiescent_or_panic();
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 1);
        assert_eq!(w.pending_len(), 0);
    }

    #[test]
    fn scripted_delivery_overrides_blocks() {
        let (mut w, ids) = world_of(2);
        w.block_link(ids[0], ids[1]);
        w.send_from_external(ids[0], ids[1], Msg::Hello);
        // Timed scheduler refuses...
        assert!(!w.step_timed());
        // ...but the adversary can force it.
        let held = w.pending_ids_matching(|e| e.to == ids[1]);
        w.deliver(held[0]).unwrap();
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 1);
    }

    #[test]
    fn heal_after_scripted_delivery_discards_the_stale_parked_entry() {
        // Force-deliver across a blocked link (the index entry is
        // parked), then heal: the re-queued entry is stale and must be
        // skipped without a double delivery.
        let (mut w, ids) = world_of(2);
        w.block_link(ids[0], ids[1]);
        w.send_from_external(ids[0], ids[1], Msg::Hello);
        assert!(!w.step_timed()); // parks the entry
        let held = w.pending_ids_matching(|e| e.to == ids[1]);
        w.deliver(held[0]).unwrap();
        w.heal_link(ids[0], ids[1]);
        // Only the ack from ids[1] remains deliverable.
        assert!(w.step_timed());
        assert!(!w.step_timed());
        assert_eq!(w.stats().delivered, 2);
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 1);
    }

    #[test]
    fn partition_and_heal_groups() {
        let (mut w, ids) = world_of(4);
        w.partition(&[ids[0], ids[1]], &[ids[2], ids[3]]);
        w.inject(ids[0], Msg::ReplyAll);
        w.run_until_quiescent_or_panic();
        // Hellos reached only the same-side peer.
        assert_eq!(w.with_actor::<Node, _, _>(ids[1], |n| n.hellos).unwrap(), 1);
        assert_eq!(w.with_actor::<Node, _, _>(ids[2], |n| n.hellos).unwrap(), 0);
        assert_eq!(w.with_actor::<Node, _, _>(ids[3], |n| n.hellos).unwrap(), 0);
        w.heal_partition(&[ids[0], ids[1]], &[ids[2], ids[3]]);
        w.run_until_quiescent_or_panic();
        assert_eq!(w.with_actor::<Node, _, _>(ids[2], |n| n.hellos).unwrap(), 1);
        assert_eq!(w.with_actor::<Node, _, _>(ids[3], |n| n.hellos).unwrap(), 1);
    }

    /// Two actors that ping-pong forever.
    struct Forever;
    impl Automaton for Forever {
        type Msg = Msg;
        fn on_message(&mut self, from: ProcessId, _m: Msg, out: &mut Outbox<Msg>) {
            out.send(from, Msg::Hello);
        }
    }

    fn livelocked_world() -> World<Msg> {
        let mut w: World<Msg> = World::new(SimConfig {
            max_steps: 100,
            ..SimConfig::default()
        });
        let a = w.add_actor(Box::new(Forever));
        let b = w.add_actor(Box::new(Forever));
        w.send_from_external(a, b, Msg::Hello);
        w
    }

    #[test]
    fn livelock_returns_typed_quiescence_error() {
        let mut w = livelocked_world();
        let err = w.run_until_quiescent().unwrap_err();
        assert_eq!(err.steps, 100);
        assert_eq!(err.in_transit, 1); // the ping-pong ball
        assert!(err.to_string().contains("did not quiesce"));
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn livelock_hits_step_budget() {
        livelocked_world().run_until_quiescent_or_panic();
    }
}
