//! The indexed event queue behind the timed scheduler.
//!
//! A [`World`](super::World) keeps the authoritative in-transit set
//! `mset` (a `BTreeMap<MsgId, Envelope>`) because scripted/adversarial
//! delivery must be able to address *any* message — that is the power
//! the paper's lower-bound adversary has. The *timed* scheduler, on the
//! other hand, only ever needs the earliest deliverable envelope, so the
//! world additionally maintains a [`ReadyQueue`]: a binary min-heap of
//! `(ready_at, MsgId)` entries plus a per-link parking table for blocked
//! links.
//!
//! ## Lazy invalidation
//!
//! Heap entries are never removed eagerly; each entry is validated when
//! it reaches the top of the heap:
//!
//! * **Scripted removals** ([`deliver`](super::World::deliver),
//!   [`deliver_set`](super::World::deliver_set),
//!   [`drop_matching`](super::World::drop_matching), …) take the
//!   envelope out of `mset` and leave the heap entry behind; a popped
//!   entry whose id is no longer in `mset` is stale and is discarded.
//! * **Crashed receivers** are handled by the popping scheduler itself:
//!   the envelope is dropped from `mset` with a trace entry, exactly as
//!   the linear scan used to do.
//! * **Blocked links** park the popped entry in the per-link side
//!   table; [`ReadyQueue::heal`] re-pushes everything parked on a link
//!   when it is unblocked. A parked entry can itself go stale (scripted
//!   delivery outranks blocks), so re-pushed entries are re-validated on
//!   their next pop.
//!
//! `ready_at` is immutable per envelope and [`MsgId`]s are never reused,
//! so "id still in `mset`" is a complete validity check. Every envelope
//! in `mset` is indexed by exactly one live heap or parked entry, which
//! makes a timed step O(log n) amortized instead of an O(n) scan per
//! delivery.
//!
//! The index is maintained on *every* send, including in runs driven
//! purely by scripted or random delivery that never pop it — a small
//! constant cost per message (a heap push, plus one stale pop if a
//! timed step later skims the entry). Tiny worlds with in-transit pools
//! of a dozen envelopes pay that constant without the asymptotic
//! benefit; the `simnet_scheduler` bench in `fastreg-bench` quantifies
//! both sides of the trade (at 10⁴ pooled envelopes a timed step is
//! ~100× cheaper than the linear scan).

use std::cmp::Reverse;
#[allow(clippy::disallowed_types)]
use std::collections::{BinaryHeap, HashMap}; // fastreg-lint: allow(nondet-order): parking table, keyed access only
use std::fmt;

use crate::envelope::MsgId;
use crate::id::ProcessId;
use crate::time::SimTime;

/// A directed link `from → to`.
pub type Link = (ProcessId, ProcessId);

/// One ready-queue entry: the earliest delivery time of a message plus
/// its id as the (send-order) tie-breaker.
pub type ReadyEntry = (SimTime, MsgId);

/// Deterministic counters over a [`ReadyQueue`]'s lifetime, harvested
/// by the observability layer. Every field is driven by scheduler
/// operations — which on simnet are a pure function of the seed — so
/// the snapshot is identical across runs and worker counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Entries indexed ([`ReadyQueue::push`]), re-pushes from
    /// [`ReadyQueue::heal`] included.
    pub pushed: u64,
    /// Entries popped for validation (stale entries included).
    pub popped: u64,
    /// Entries parked on a blocked link.
    pub parked: u64,
    /// Entries released back into the heap by [`ReadyQueue::heal`].
    pub healed: u64,
    /// High-water mark of the heap length (index depth, not exact
    /// queue depth: stale entries count until skimmed).
    pub heap_high_water: u64,
}

/// The timed scheduler's index over `mset`: a min-heap keyed by
/// `(ready_at, MsgId)` with a parking table for blocked links.
///
/// See the [module docs](self) for the invalidation rules.
#[derive(Debug, Default)]
#[allow(clippy::disallowed_types)]
pub struct ReadyQueue {
    heap: BinaryHeap<Reverse<ReadyEntry>>,
    // Keyed entry/remove only — never iterated. Entries released by
    // `heal` re-enter the heap, whose (ready_at, MsgId) keys are unique,
    // so the pop order is independent of this map's internal order.
    // fastreg-lint: allow(nondet-order): per-link parking table, keyed access only, never iterated
    parked: HashMap<Link, Vec<ReadyEntry>>,
    stats: SchedStats,
}

impl ReadyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a (new or re-validated) in-transit message.
    pub fn push(&mut self, ready_at: SimTime, id: MsgId) {
        self.heap.push(Reverse((ready_at, id)));
        self.stats.pushed += 1;
        self.stats.heap_high_water = self.stats.heap_high_water.max(self.heap.len() as u64);
    }

    /// Pops the entry with the smallest `(ready_at, id)`, stale entries
    /// included — the caller validates against `mset`.
    pub fn pop(&mut self) -> Option<ReadyEntry> {
        let entry = self.heap.pop().map(|Reverse(entry)| entry);
        if entry.is_some() {
            self.stats.popped += 1;
        }
        entry
    }

    /// The entry [`pop`](Self::pop) would return, without removing it.
    /// The same caveat applies: the entry may be stale.
    pub fn peek(&self) -> Option<ReadyEntry> {
        self.heap.peek().map(|&Reverse(entry)| entry)
    }

    /// Parks an entry popped while its link was blocked; it stays out of
    /// the heap until [`heal`](Self::heal) releases the link.
    pub fn park(&mut self, link: Link, entry: ReadyEntry) {
        self.parked.entry(link).or_default().push(entry);
        self.stats.parked += 1;
    }

    /// Re-indexes everything parked on `link` (no-op if nothing is).
    pub fn heal(&mut self, link: Link) {
        if let Some(entries) = self.parked.remove(&link) {
            for entry in entries {
                self.stats.healed += 1;
                // Via `push` so re-indexing counts and the high-water
                // mark stays accurate.
                self.push(entry.0, entry.1);
            }
        }
    }

    /// The lifetime counters (see [`SchedStats`]).
    pub fn stats(&self) -> SchedStats {
        self.stats
    }
}

/// Budget exhaustion in
/// [`run_until_quiescent`](super::World::run_until_quiescent): the step
/// budget ([`SimConfig::max_steps`](crate::runner::SimConfig::max_steps))
/// ran out while messages remained deliverable, which indicates a
/// protocol that never quiesces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuiescenceError {
    /// Steps taken before giving up (the configured budget).
    pub steps: u64,
    /// Messages still in transit when the budget ran out.
    pub in_transit: usize,
}

impl fmt::Display for QuiescenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation did not quiesce within {} steps ({} messages in transit)",
            self.steps, self.in_transit
        )
    }
}

impl std::error::Error for QuiescenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64, id: u64) -> ReadyEntry {
        (SimTime::from_ticks(t), MsgId(id))
    }

    #[test]
    fn pops_in_ready_then_send_order() {
        let mut q = ReadyQueue::new();
        q.push(SimTime::from_ticks(5), MsgId(2));
        q.push(SimTime::from_ticks(3), MsgId(9));
        q.push(SimTime::from_ticks(5), MsgId(1));
        assert_eq!(q.pop(), Some(entry(3, 9)));
        assert_eq!(q.pop(), Some(entry(5, 1)));
        assert_eq!(q.pop(), Some(entry(5, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_matches_pop_without_removing() {
        let mut q = ReadyQueue::new();
        assert_eq!(q.peek(), None);
        q.push(SimTime::from_ticks(5), MsgId(2));
        q.push(SimTime::from_ticks(3), MsgId(9));
        assert_eq!(q.peek(), Some(entry(3, 9)));
        assert_eq!(q.peek(), Some(entry(3, 9)), "peek does not remove");
        assert_eq!(q.pop(), Some(entry(3, 9)));
        assert_eq!(q.peek(), Some(entry(5, 2)));
    }

    #[test]
    fn heal_reindexes_parked_entries() {
        let mut q = ReadyQueue::new();
        let link = (ProcessId::new(0), ProcessId::new(1));
        q.park(link, entry(4, 7));
        q.park(link, entry(2, 8));
        assert_eq!(q.pop(), None, "parked entries are out of the heap");
        q.heal(link);
        assert_eq!(q.pop(), Some(entry(2, 8)));
        assert_eq!(q.pop(), Some(entry(4, 7)));
        // Healing an unknown link is a no-op.
        q.heal((ProcessId::new(5), ProcessId::new(6)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stats_count_every_scheduler_operation() {
        let mut q = ReadyQueue::new();
        let link = (ProcessId::new(0), ProcessId::new(1));
        q.push(SimTime::from_ticks(1), MsgId(1));
        q.push(SimTime::from_ticks(2), MsgId(2));
        assert_eq!(q.stats().heap_high_water, 2);
        let popped = q.pop().unwrap();
        q.park(link, popped);
        q.heal(link);
        q.pop();
        q.pop();
        assert_eq!(
            q.stats(),
            SchedStats {
                pushed: 3, // 2 pushes + 1 heal re-push
                popped: 3,
                parked: 1,
                healed: 1,
                heap_high_water: 2,
            }
        );
        // Pop on an empty heap is not an operation.
        assert_eq!(q.pop(), None);
        assert_eq!(q.stats().popped, 3);
    }

    #[test]
    fn quiescence_error_renders() {
        let e = QuiescenceError {
            steps: 100,
            in_transit: 3,
        };
        let s = e.to_string();
        assert!(s.contains("did not quiesce"));
        assert!(s.contains("100"));
        assert!(s.contains("3 messages"));
    }
}
