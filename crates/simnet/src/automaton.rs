//! The per-process automaton trait and its output collector.
//!
//! An [`Automaton`] is the code `A_p` the paper assigns to process `p` (§2.2).
//! A step `<p, M>` delivers a message set `M`; the automaton atomically
//! updates its state and emits output messages through an [`Outbox`]. The
//! same automaton type runs unchanged under the discrete-event
//! [`World`](crate::world::World) and the wall-clock
//! [`threaded`](crate::threaded) runtime.

use std::any::Any;

use crate::id::ProcessId;
use crate::time::SimTime;

/// Blanket downcast support so a [`World`](crate::world::World) can hand
/// tests a typed view of an actor's state via
/// [`World::with_actor`](crate::world::World::with_actor).
pub trait Downcast: Any {
    /// Borrows `self` as [`Any`].
    fn as_any(&self) -> &dyn Any;
    /// Mutably borrows `self` as [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> Downcast for T {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A deterministic message-driven state machine: the paper's automaton `A_p`.
///
/// Implementations must be deterministic functions of `(state, from, msg)`:
/// all nondeterminism in a run comes from the scheduler, never from the
/// automaton. This is what makes simulated runs reproducible and the paper's
/// indistinguishability arguments (two runs delivering the same messages to
/// `p` leave `p` in the same state) directly executable.
///
/// # Examples
///
/// ```
/// use fastreg_simnet::automaton::{Automaton, Outbox};
/// use fastreg_simnet::id::ProcessId;
///
/// /// Echoes every message back to its sender.
/// struct Echo;
///
/// impl Automaton for Echo {
///     type Msg = String;
///     fn on_message(&mut self, from: ProcessId, msg: String, out: &mut Outbox<String>) {
///         out.send(from, msg);
///     }
/// }
/// ```
pub trait Automaton: Downcast + Send {
    /// The message alphabet of this automaton.
    type Msg: Clone + std::fmt::Debug + Send + 'static;

    /// Called once when the world starts, before any message is delivered.
    ///
    /// The default does nothing; override to send initial messages.
    fn on_start(&mut self, out: &mut Outbox<Self::Msg>) {
        let _ = out;
    }

    /// Handles one delivered message. Corresponds to a step `<p, {m}>`.
    ///
    /// Messages injected by the environment (operation invocations) arrive
    /// with `from == ProcessId::EXTERNAL`.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);
}

/// Collects the messages an automaton emits during one step, and exposes the
/// current time to the automaton.
///
/// The runtime moves the collected messages into the in-transit set after the
/// step completes — mirroring the paper's atomic step semantics, with one
/// deliberate exception: a crash fault may be injected *after a prefix of the
/// sends* ([`CrashMode::AfterSends`](crate::fault::CrashMode::AfterSends)),
/// because the paper requires algorithms to tolerate a process crashing
/// mid-broadcast.
#[derive(Debug)]
pub struct Outbox<M> {
    now: SimTime,
    this: ProcessId,
    msgs: Vec<(ProcessId, M)>,
}

impl<M> Outbox<M> {
    /// Creates an outbox for a step taken by `this` at time `now`.
    pub fn new(this: ProcessId, now: SimTime) -> Self {
        Outbox {
            now,
            this,
            msgs: Vec::new(),
        }
    }

    /// The current time (virtual under simulation, wall-clock ticks under
    /// the threaded runtime).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the process taking this step.
    pub fn this(&self) -> ProcessId {
        self.this
    }

    /// Queues a message to `to`.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Queues the same message to every id in `targets`, in order.
    ///
    /// Order matters: crash injection can cut a broadcast after any prefix.
    pub fn broadcast<I>(&mut self, targets: I, msg: M)
    where
        I: IntoIterator<Item = ProcessId>,
        M: Clone,
    {
        for to in targets {
            self.msgs.push((to, msg.clone()));
        }
    }

    /// Number of messages queued so far in this step.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Returns `true` if no messages have been queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Consumes the outbox, returning the queued `(to, msg)` pairs in send
    /// order.
    pub fn into_messages(self) -> Vec<(ProcessId, M)> {
        self.msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_collects_in_order() {
        let mut out: Outbox<u32> = Outbox::new(ProcessId::new(0), SimTime::ZERO);
        out.send(ProcessId::new(1), 10);
        out.send(ProcessId::new(2), 20);
        assert_eq!(out.len(), 2);
        let msgs = out.into_messages();
        assert_eq!(msgs, vec![(ProcessId::new(1), 10), (ProcessId::new(2), 20)]);
    }

    #[test]
    fn broadcast_clones_to_each_target() {
        let mut out: Outbox<&'static str> = Outbox::new(ProcessId::new(0), SimTime::ZERO);
        out.broadcast((1..4).map(ProcessId::new), "hi");
        let msgs = out.into_messages();
        assert_eq!(msgs.len(), 3);
        assert!(msgs.iter().all(|(_, m)| *m == "hi"));
        assert_eq!(msgs[0].0, ProcessId::new(1));
        assert_eq!(msgs[2].0, ProcessId::new(3));
    }

    #[test]
    fn outbox_reports_time_and_self() {
        let out: Outbox<u32> = Outbox::new(ProcessId::new(9), SimTime::from_ticks(77));
        assert_eq!(out.now().ticks(), 77);
        assert_eq!(out.this(), ProcessId::new(9));
        assert!(out.is_empty());
    }

    #[test]
    fn downcast_blanket_impl() {
        struct S(u8);
        impl Automaton for S {
            type Msg = ();
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Outbox<()>) {}
        }
        let mut d: Box<dyn Automaton<Msg = ()>> = Box::new(S(5));
        assert_eq!((*d).as_any().downcast_ref::<S>().unwrap().0, 5);
        (*d).as_any_mut().downcast_mut::<S>().unwrap().0 = 6;
        assert_eq!((*d).as_any().downcast_ref::<S>().unwrap().0, 6);
    }
}
