//! Virtual time.
//!
//! Simulated time is a monotone counter of *ticks*. The simulator interprets
//! one tick as one microsecond when converting delay models expressed in
//! microseconds, but nothing in the crate depends on that interpretation:
//! the paper's complexity claims are in communication *rounds*, which are
//! independent of the tick scale.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in ticks since the start of the run.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`].
///
/// # Examples
///
/// ```
/// use fastreg_simnet::time::SimTime;
///
/// let t = SimTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a `SimTime` from a raw tick count.
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference in ticks (`self - earlier`, or 0 if `earlier`
    /// is later than `self`).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(ticks: u64) -> Self {
        SimTime(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.ticks(), 0);
    }

    #[test]
    fn add_advances() {
        let t = SimTime::from_ticks(10) + 5;
        assert_eq!(t.ticks(), 15);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::from_ticks(1);
        t += 2;
        assert_eq!(t.ticks(), 3);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(9);
        assert_eq!(b.since(a), 6);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    fn sub_saturates() {
        let a = SimTime::from_ticks(3);
        let b = SimTime::from_ticks(9);
        assert_eq!(b - a, 6);
        assert_eq!(a - b, 0);
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::from_ticks(u64::MAX) + 1;
        assert_eq!(t.ticks(), u64::MAX);
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![
            SimTime::from_ticks(5),
            SimTime::ZERO,
            SimTime::from_ticks(2),
        ];
        times.sort();
        assert_eq!(
            times,
            vec![
                SimTime::ZERO,
                SimTime::from_ticks(2),
                SimTime::from_ticks(5)
            ]
        );
    }

    #[test]
    fn display_and_debug() {
        let t = SimTime::from_ticks(42);
        assert_eq!(format!("{t}"), "42");
        assert_eq!(format!("{t:?}"), "t=42");
    }

    #[test]
    fn from_u64() {
        let t: SimTime = 7u64.into();
        assert_eq!(t.ticks(), 7);
    }
}
