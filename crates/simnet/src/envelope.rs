//! In-transit messages.

use std::fmt;

use crate::id::ProcessId;
use crate::time::SimTime;

/// A unique, monotonically increasing identifier for a sent message.
///
/// `MsgId` order is send order, which gives the scripted scheduler a stable
/// way to refer to individual in-transit messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A message in the in-transit set `mset`, together with its routing
/// metadata.
///
/// An envelope exists from the moment its sender's step completes until a
/// scheduler delivers it (or a fault explicitly drops it — reliable channels
/// never drop messages on their own).
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Unique id, in global send order.
    pub id: MsgId,
    /// Sender address ([`ProcessId::EXTERNAL`] for injected invocations).
    pub from: ProcessId,
    /// Receiver address.
    pub to: ProcessId,
    /// Virtual time at which the sender's step completed.
    pub sent_at: SimTime,
    /// Earliest virtual time a timed scheduler may deliver this message.
    pub ready_at: SimTime,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Returns `true` if this message travels between the given pair.
    pub fn is_between(&self, from: ProcessId, to: ProcessId) -> bool {
        self.from == from && self.to == to
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: u32, to: u32) -> Envelope<u8> {
        Envelope {
            id: MsgId(0),
            from: ProcessId::new(from),
            to: ProcessId::new(to),
            sent_at: SimTime::ZERO,
            ready_at: SimTime::ZERO,
            msg: 0,
        }
    }

    #[test]
    fn is_between_matches_exact_pair() {
        let e = env(1, 2);
        assert!(e.is_between(ProcessId::new(1), ProcessId::new(2)));
        assert!(!e.is_between(ProcessId::new(2), ProcessId::new(1)));
    }

    #[test]
    fn msg_id_formats() {
        assert_eq!(format!("{}", MsgId(3)), "m3");
        assert_eq!(format!("{:?}", MsgId(3)), "m3");
    }

    #[test]
    fn msg_id_orders_by_send_order() {
        assert!(MsgId(1) < MsgId(2));
    }
}
