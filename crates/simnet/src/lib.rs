//! # fastreg-simnet
//!
//! A deterministic discrete-event simulator of the asynchronous
//! message-passing model used by *How Fast can a Distributed Atomic Read
//! be?* (PODC 2004), plus an in-process threaded runtime for wall-clock
//! benchmarks.
//!
//! ## The model
//!
//! The paper's system model (§2) is an asynchronous message-passing system:
//! computation proceeds in *steps* `<p, M>` in which process `p` atomically
//! removes a set of messages `M` addressed to it from the global in-transit
//! set `mset`, applies `M` and its current state to its automaton, adopts the
//! new state, and adds the output messages to `mset`. Channels are reliable
//! and bidirectional; any number of clients and up to `t` servers may crash;
//! in the arbitrary-failure model up to `b ≤ t` servers may behave
//! maliciously.
//!
//! This crate realizes that model exactly:
//!
//! * [`automaton::Automaton`] is the per-process automaton `A_p`.
//! * [`world::World`] holds `mset` (the in-transit pool) and executes steps.
//!   Two driving styles coexist:
//!   - **timed**: each message gets a delivery time from a [`delay::DelayModel`]
//!     and steps fire in virtual-time order ([`run_until_quiescent`](world::World::run_until_quiescent)),
//!     popped from an indexed event queue ([`world::sched`]) in O(log n)
//!     per step;
//!   - **scripted**: a driver (test or adversary) picks exactly which
//!     in-transit messages are delivered and when ([`deliver`](world::World::deliver),
//!     [`deliver_set`](world::World::deliver_set)), which is how the paper's lower-bound partial
//!     runs are constructed.
//!
//!   Both styles converge on one internal delivery path (trace entry,
//!   statistics, receiver step), so a run that mixes them — deliver a few
//!   messages by hand, then let the clock finish the round — records
//!   exactly the same kind of evidence as a purely timed one. Scripted
//!   removals simply leave stale index entries behind for the timed
//!   scheduler to discard lazily; see the [`world::sched`] docs for the
//!   invalidation rules.
//! * [`fault`] injects crashes, including crashing a process *in the middle
//!   of a broadcast* after an arbitrary prefix of sends — the paper is
//!   explicit that algorithms must tolerate this (§4, correctness preamble).
//! * [`byz`] wraps an automaton with a Byzantine strategy.
//! * [`trace::Trace`] records every send/deliver/crash for debugging and for
//!   rendering the proof constructions.
//! * [`threaded`] runs the *same* automata over OS threads and crossbeam
//!   channels for wall-clock benchmarking.
//!
//! ## Example
//!
//! ```
//! use fastreg_simnet::prelude::*;
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! struct Ponger;
//! impl Automaton for Ponger {
//!     type Msg = Msg;
//!     fn on_message(&mut self, from: ProcessId, msg: Msg, out: &mut Outbox<Msg>) {
//!         if matches!(msg, Msg::Ping) {
//!             out.send(from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! struct Pinger { got_pong: bool }
//! impl Automaton for Pinger {
//!     type Msg = Msg;
//!     fn on_message(&mut self, _from: ProcessId, msg: Msg, _out: &mut Outbox<Msg>) {
//!         if matches!(msg, Msg::Pong) {
//!             self.got_pong = true;
//!         }
//!     }
//! }
//!
//! let mut world = World::new(SimConfig::default());
//! let pinger = world.add_actor(Box::new(Pinger { got_pong: false }));
//! let ponger = world.add_actor(Box::new(Ponger));
//! world.send_from_external(pinger, ponger, Msg::Ping);
//! world.run_until_quiescent().expect("ping-pong quiesces");
//! assert!(world.with_actor::<Pinger, _, _>(pinger, |p| p.got_pong).unwrap());
//! ```

#![warn(missing_docs)]

pub mod automaton;
pub mod byz;
pub mod delay;
pub mod envelope;
pub mod fault;
pub mod id;
pub mod runner;
pub mod stats;
pub mod threaded;
pub mod time;
pub mod trace;
pub mod world;

/// Commonly used items.
pub mod prelude {
    pub use crate::automaton::{Automaton, Downcast, Outbox};
    pub use crate::byz::{ByzActor, ByzStrategy};
    pub use crate::delay::DelayModel;
    pub use crate::envelope::{Envelope, MsgId};
    pub use crate::fault::CrashMode;
    pub use crate::id::ProcessId;
    pub use crate::runner::SimConfig;
    pub use crate::time::SimTime;
    pub use crate::trace::{Trace, TraceEntry};
    pub use crate::world::{QuiescenceError, World};
}
