//! Simulation configuration.

use crate::delay::DelayModel;

/// Configuration for a [`World`](crate::world::World).
///
/// # Examples
///
/// ```
/// use fastreg_simnet::runner::SimConfig;
/// use fastreg_simnet::delay::DelayModel;
///
/// let cfg = SimConfig::default()
///     .with_seed(42)
///     .with_delay(DelayModel::Uniform { lo: 5, hi: 50 });
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for all randomness in the run (delays, random scheduling).
    /// Runs with equal seeds and equal drivers produce identical traces.
    pub seed: u64,
    /// Message delay model for the timed scheduler.
    pub delay: DelayModel,
    /// Maximum entries kept in the trace.
    pub trace_capacity: usize,
    /// Step budget for `run_*` loops; exceeded budgets indicate livelock.
    pub max_steps: u64,
}

impl SimConfig {
    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Returns the config with a different trace capacity.
    pub fn with_trace_capacity(mut self, cap: usize) -> Self {
        self.trace_capacity = cap;
        self
    }

    /// Returns the config with a different step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            delay: DelayModel::default(),
            trace_capacity: 100_000,
            max_steps: 10_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_update_fields() {
        let cfg = SimConfig::default()
            .with_seed(9)
            .with_delay(DelayModel::Constant(3))
            .with_trace_capacity(10)
            .with_max_steps(500);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.delay, DelayModel::Constant(3));
        assert_eq!(cfg.trace_capacity, 10);
        assert_eq!(cfg.max_steps, 500);
    }

    #[test]
    fn default_has_positive_budget() {
        let cfg = SimConfig::default();
        assert!(cfg.max_steps > 0);
        assert!(cfg.trace_capacity > 0);
    }
}
