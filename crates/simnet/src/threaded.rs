//! Wall-clock runtime: the same automata over OS threads and channels.
//!
//! Every actor runs on its own thread with an unbounded crossbeam channel as
//! its inbox; sends are real cross-thread messages. This runtime exists for
//! the criterion benches — it measures real synchronization cost, while the
//! [`World`](crate::world::World) measures rounds and virtual latency.
//!
//! Times reported through [`Outbox::now`](crate::automaton::Outbox::now) are
//! microseconds since the net was started, so histories recorded under both
//! runtimes are comparable.

use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::automaton::{Automaton, Outbox};
use crate::id::ProcessId;
use crate::time::SimTime;

enum NodeInput<M> {
    Msg { from: ProcessId, msg: M },
    Shutdown,
}

type NodeChannel<M> = (Sender<NodeInput<M>>, Receiver<NodeInput<M>>);

/// A running set of actor threads connected by reliable channels.
///
/// Construct with [`ThreadedNet::spawn`], drive with
/// [`ThreadedNet::inject`], and stop with [`ThreadedNet::shutdown`], which
/// returns the final automata for inspection.
///
/// # Examples
///
/// ```
/// use fastreg_simnet::prelude::*;
/// use fastreg_simnet::threaded::ThreadedNet;
///
/// #[derive(Clone, Debug)]
/// struct Inc(u64);
///
/// struct Counter { total: u64 }
/// impl Automaton for Counter {
///     type Msg = Inc;
///     fn on_message(&mut self, _f: ProcessId, m: Inc, _o: &mut Outbox<Inc>) {
///         self.total += m.0;
///     }
/// }
///
/// let net = ThreadedNet::spawn(vec![Box::new(Counter { total: 0 })]);
/// net.inject(ProcessId::new(0), Inc(5));
/// net.inject(ProcessId::new(0), Inc(7));
/// let actors = net.shutdown();
/// let counter = (*actors[0]).as_any().downcast_ref::<Counter>().unwrap();
/// assert_eq!(counter.total, 12);
/// ```
pub struct ThreadedNet<M> {
    senders: Vec<Sender<NodeInput<M>>>,
    handles: Vec<JoinHandle<Box<dyn Automaton<Msg = M>>>>,
}

impl<M: Clone + std::fmt::Debug + Send + 'static> ThreadedNet<M> {
    /// Spawns one thread per automaton. Ids are assigned in vector order.
    /// Each automaton's `on_start` runs on its own thread before any message
    /// is processed.
    pub fn spawn(automata: Vec<Box<dyn Automaton<Msg = M>>>) -> Self {
        let start = Instant::now();
        let channels: Vec<NodeChannel<M>> = automata.iter().map(|_| unbounded()).collect();
        let senders: Vec<Sender<NodeInput<M>>> = channels.iter().map(|(s, _)| s.clone()).collect();

        let mut handles = Vec::with_capacity(automata.len());
        for (index, (mut automaton, (_, rx))) in automata.into_iter().zip(channels).enumerate() {
            let peers = senders.clone();
            let me = ProcessId::new(index as u32);
            handles.push(std::thread::spawn(move || {
                let now = || SimTime::from_ticks(start.elapsed().as_micros() as u64);
                let route = |out: Outbox<M>, peers: &[Sender<NodeInput<M>>]| {
                    for (to, msg) in out.into_messages() {
                        if let Some(tx) = peers.get(to.index() as usize) {
                            // A closed peer inbox means that peer already
                            // shut down; dropping the message matches the
                            // "stays in transit forever" semantics.
                            let _ = tx.send(NodeInput::Msg { from: me, msg });
                        }
                    }
                };
                let mut out = Outbox::new(me, now());
                automaton.on_start(&mut out);
                route(out, &peers);
                while let Ok(input) = rx.recv() {
                    match input {
                        NodeInput::Msg { from, msg } => {
                            let mut out = Outbox::new(me, now());
                            automaton.on_message(from, msg, &mut out);
                            route(out, &peers);
                        }
                        NodeInput::Shutdown => break,
                    }
                }
                automaton
            }));
        }

        ThreadedNet { senders, handles }
    }

    /// Number of nodes in the net.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Returns `true` if the net has no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends a message to `to` from the external environment.
    ///
    /// Operation invocations use this entry point, exactly like
    /// [`World::inject`](crate::world::World::inject).
    pub fn inject(&self, to: ProcessId, msg: M) {
        if let Some(tx) = self.senders.get(to.index() as usize) {
            let _ = tx.send(NodeInput::Msg {
                from: ProcessId::EXTERNAL,
                msg,
            });
        }
    }

    /// Stops all nodes after they drain the messages already in their
    /// inboxes, and returns the final automata in id order.
    pub fn shutdown(self) -> Vec<Box<dyn Automaton<Msg = M>>> {
        for tx in &self.senders {
            let _ = tx.send(NodeInput::Shutdown);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("actor thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    struct Responder;
    impl Automaton for Responder {
        type Msg = Msg;
        fn on_message(&mut self, from: ProcessId, msg: Msg, out: &mut Outbox<Msg>) {
            if matches!(msg, Msg::Ping) {
                out.send(from, Msg::Pong);
            }
        }
    }

    struct Initiator {
        peer: ProcessId,
        pongs: Arc<AtomicUsize>,
        done: Sender<()>,
        expect: usize,
    }
    impl Automaton for Initiator {
        type Msg = Msg;
        fn on_message(&mut self, _from: ProcessId, msg: Msg, out: &mut Outbox<Msg>) {
            match msg {
                Msg::Ping => out.send(self.peer, Msg::Ping),
                Msg::Pong => {
                    let n = self.pongs.fetch_add(1, Ordering::SeqCst) + 1;
                    if n == self.expect {
                        let _ = self.done.send(());
                    }
                }
            }
        }
    }

    #[test]
    fn round_trips_complete() {
        let pongs = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded();
        let initiator = Initiator {
            peer: ProcessId::new(1),
            pongs: pongs.clone(),
            done: done_tx,
            expect: 10,
        };
        let net = ThreadedNet::spawn(vec![Box::new(initiator), Box::new(Responder)]);
        for _ in 0..10 {
            net.inject(ProcessId::new(0), Msg::Ping);
        }
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("all pongs arrive");
        net.shutdown();
        assert_eq!(pongs.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn shutdown_returns_final_state() {
        struct Last(Option<u32>);
        impl Automaton for Last {
            type Msg = u32;
            fn on_message(&mut self, _f: ProcessId, m: u32, _o: &mut Outbox<u32>) {
                self.0 = Some(m);
            }
        }
        let net = ThreadedNet::spawn(vec![Box::new(Last(None))]);
        net.inject(ProcessId::new(0), 41);
        net.inject(ProcessId::new(0), 42);
        let actors = net.shutdown();
        let last = (*actors[0]).as_any().downcast_ref::<Last>().unwrap();
        assert_eq!(last.0, Some(42));
        assert_eq!(actors.len(), 1);
    }

    #[test]
    fn empty_net_is_empty() {
        let net: ThreadedNet<u32> = ThreadedNet::spawn(vec![]);
        assert!(net.is_empty());
        assert_eq!(net.len(), 0);
        net.shutdown();
    }

    #[test]
    fn inject_to_unknown_id_is_ignored() {
        let net: ThreadedNet<u32> = ThreadedNet::spawn(vec![]);
        net.inject(ProcessId::new(5), 1);
        net.shutdown();
    }
}
