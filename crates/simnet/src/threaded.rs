//! Wall-clock runtime: the same automata over OS threads and channels.
//!
//! Every actor runs on its own thread with an unbounded crossbeam channel as
//! its inbox; sends are real cross-thread messages. This runtime exists for
//! the criterion benches — it measures real synchronization cost, while the
//! [`World`](crate::world::World) measures rounds and virtual latency.
//!
//! Times reported through [`Outbox::now`](crate::automaton::Outbox::now) are
//! microseconds since the net was started, so histories recorded under both
//! runtimes are comparable.
//!
//! Besides the actor runtime, this module hosts the workspace's
//! order-preserving worker pool, [`map_ordered`]: the fan-out primitive
//! the schedule-exploration engine uses to run independent simulated
//! worlds on real threads while keeping results — and therefore verdicts
//! and counterexample bytes — independent of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::automaton::{Automaton, Outbox};
use crate::id::ProcessId;
use crate::time::SimTime;

enum NodeInput<M> {
    Msg { from: ProcessId, msg: M },
    Shutdown,
}

type NodeChannel<M> = (Sender<NodeInput<M>>, Receiver<NodeInput<M>>);

/// A running set of actor threads connected by reliable channels.
///
/// Construct with [`ThreadedNet::spawn`], drive with
/// [`ThreadedNet::inject`], and stop with [`ThreadedNet::shutdown`], which
/// returns the final automata for inspection.
///
/// # Examples
///
/// ```
/// use fastreg_simnet::prelude::*;
/// use fastreg_simnet::threaded::ThreadedNet;
///
/// #[derive(Clone, Debug)]
/// struct Inc(u64);
///
/// struct Counter { total: u64 }
/// impl Automaton for Counter {
///     type Msg = Inc;
///     fn on_message(&mut self, _f: ProcessId, m: Inc, _o: &mut Outbox<Inc>) {
///         self.total += m.0;
///     }
/// }
///
/// let net = ThreadedNet::spawn(vec![Box::new(Counter { total: 0 })]);
/// net.inject(ProcessId::new(0), Inc(5));
/// net.inject(ProcessId::new(0), Inc(7));
/// let actors = net.shutdown();
/// let counter = (*actors[0]).as_any().downcast_ref::<Counter>().unwrap();
/// assert_eq!(counter.total, 12);
/// ```
pub struct ThreadedNet<M> {
    senders: Vec<Sender<NodeInput<M>>>,
    handles: Vec<JoinHandle<Box<dyn Automaton<Msg = M>>>>,
}

impl<M: Clone + std::fmt::Debug + Send + 'static> ThreadedNet<M> {
    /// Spawns one thread per automaton. Ids are assigned in vector order.
    /// Each automaton's `on_start` runs on its own thread before any message
    /// is processed.
    // `threaded` is a sanctioned wall-clock site (lint rule D2): OS
    // threads have no simulated clock to timestamp with.
    #[allow(clippy::disallowed_methods)]
    pub fn spawn(automata: Vec<Box<dyn Automaton<Msg = M>>>) -> Self {
        let start = Instant::now();
        let channels: Vec<NodeChannel<M>> = automata.iter().map(|_| unbounded()).collect();
        let senders: Vec<Sender<NodeInput<M>>> = channels.iter().map(|(s, _)| s.clone()).collect();

        let mut handles = Vec::with_capacity(automata.len());
        for (index, (mut automaton, (_, rx))) in automata.into_iter().zip(channels).enumerate() {
            let peers = senders.clone();
            let me = ProcessId::new(index as u32);
            handles.push(std::thread::spawn(move || {
                let now = || SimTime::from_ticks(start.elapsed().as_micros() as u64);
                let route = |out: Outbox<M>, peers: &[Sender<NodeInput<M>>]| {
                    for (to, msg) in out.into_messages() {
                        if let Some(tx) = peers.get(to.index() as usize) {
                            // A closed peer inbox means that peer already
                            // shut down; dropping the message matches the
                            // "stays in transit forever" semantics.
                            let _ = tx.send(NodeInput::Msg { from: me, msg });
                        }
                    }
                };
                let mut out = Outbox::new(me, now());
                automaton.on_start(&mut out);
                route(out, &peers);
                while let Ok(input) = rx.recv() {
                    match input {
                        NodeInput::Msg { from, msg } => {
                            let mut out = Outbox::new(me, now());
                            automaton.on_message(from, msg, &mut out);
                            route(out, &peers);
                        }
                        NodeInput::Shutdown => break,
                    }
                }
                automaton
            }));
        }

        ThreadedNet { senders, handles }
    }

    /// Number of nodes in the net.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Returns `true` if the net has no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Sends a message to `to` from the external environment.
    ///
    /// Operation invocations use this entry point, exactly like
    /// [`World::inject`](crate::world::World::inject).
    pub fn inject(&self, to: ProcessId, msg: M) {
        if let Some(tx) = self.senders.get(to.index() as usize) {
            let _ = tx.send(NodeInput::Msg {
                from: ProcessId::EXTERNAL,
                msg,
            });
        }
    }

    /// Stops all nodes after they drain the messages already in their
    /// inboxes, and returns the final automata in id order.
    pub fn shutdown(self) -> Vec<Box<dyn Automaton<Msg = M>>> {
        for tx in &self.senders {
            let _ = tx.send(NodeInput::Shutdown);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("actor thread panicked"))
            .collect()
    }
}

/// Runs `f(index, item)` over every item on a pool of `threads` OS
/// threads, returning the results **in item order**.
///
/// Work is claimed from a shared atomic cursor, so threads self-balance
/// across items of uneven cost; each result is written to its item's
/// slot, so the output vector is a pure function of the inputs and `f` —
/// the thread count changes only the wall-clock, never the result. This
/// is the property the schedule-exploration engine leans on for its
/// "same cells, same verdicts, any `--threads`" guarantee.
///
/// `threads` is clamped to `1..=items.len()`; `threads <= 1` runs inline
/// on the calling thread (no spawn).
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated).
///
/// # Examples
///
/// ```
/// use fastreg_simnet::threaded::map_ordered;
///
/// let squares = map_ordered((0u64..8).collect(), 3, |i, x| {
///     assert_eq!(i as u64, x);
///     x * x
/// });
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let r = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    struct Responder;
    impl Automaton for Responder {
        type Msg = Msg;
        fn on_message(&mut self, from: ProcessId, msg: Msg, out: &mut Outbox<Msg>) {
            if matches!(msg, Msg::Ping) {
                out.send(from, Msg::Pong);
            }
        }
    }

    struct Initiator {
        peer: ProcessId,
        pongs: Arc<AtomicUsize>,
        done: Sender<()>,
        expect: usize,
    }
    impl Automaton for Initiator {
        type Msg = Msg;
        fn on_message(&mut self, _from: ProcessId, msg: Msg, out: &mut Outbox<Msg>) {
            match msg {
                Msg::Ping => out.send(self.peer, Msg::Ping),
                Msg::Pong => {
                    let n = self.pongs.fetch_add(1, Ordering::SeqCst) + 1;
                    if n == self.expect {
                        let _ = self.done.send(());
                    }
                }
            }
        }
    }

    #[test]
    fn round_trips_complete() {
        let pongs = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded();
        let initiator = Initiator {
            peer: ProcessId::new(1),
            pongs: pongs.clone(),
            done: done_tx,
            expect: 10,
        };
        let net = ThreadedNet::spawn(vec![Box::new(initiator), Box::new(Responder)]);
        for _ in 0..10 {
            net.inject(ProcessId::new(0), Msg::Ping);
        }
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("all pongs arrive");
        net.shutdown();
        assert_eq!(pongs.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn shutdown_returns_final_state() {
        struct Last(Option<u32>);
        impl Automaton for Last {
            type Msg = u32;
            fn on_message(&mut self, _f: ProcessId, m: u32, _o: &mut Outbox<u32>) {
                self.0 = Some(m);
            }
        }
        let net = ThreadedNet::spawn(vec![Box::new(Last(None))]);
        net.inject(ProcessId::new(0), 41);
        net.inject(ProcessId::new(0), 42);
        let actors = net.shutdown();
        let last = (*actors[0]).as_any().downcast_ref::<Last>().unwrap();
        assert_eq!(last.0, Some(42));
        assert_eq!(actors.len(), 1);
    }

    #[test]
    fn empty_net_is_empty() {
        let net: ThreadedNet<u32> = ThreadedNet::spawn(vec![]);
        assert!(net.is_empty());
        assert_eq!(net.len(), 0);
        net.shutdown();
    }

    #[test]
    fn inject_to_unknown_id_is_ignored() {
        let net: ThreadedNet<u32> = ThreadedNet::spawn(vec![]);
        net.inject(ProcessId::new(5), 1);
        net.shutdown();
    }

    #[test]
    fn map_ordered_preserves_item_order_across_thread_counts() {
        let work = |items: Vec<u64>, threads: usize| {
            map_ordered(items, threads, |i, x| {
                // Uneven per-item cost: later items finish out of claim
                // order on a real pool, which is exactly what the
                // order-preserving contract must absorb.
                let mut acc = x;
                for _ in 0..(x % 7) * 1_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                }
                (i, acc)
            })
        };
        let items: Vec<u64> = (0..64).collect();
        let one = work(items.clone(), 1);
        for threads in [2, 4, 8] {
            assert_eq!(work(items.clone(), threads), one, "threads = {threads}");
        }
    }

    #[test]
    fn map_ordered_handles_empty_and_oversized_pools() {
        let empty: Vec<u32> = map_ordered(Vec::<u32>::new(), 4, |_, x| x);
        assert!(empty.is_empty());
        // More threads than items: clamped, still complete and ordered.
        let out = map_ordered(vec![10u32, 20, 30], 16, |i, x| x + i as u32);
        assert_eq!(out, vec![10, 21, 32]);
    }
}
