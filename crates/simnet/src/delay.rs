//! Message delay models for the timed scheduler.
//!
//! The paper's results are stated in communication rounds, so correctness is
//! delay-independent; delay models exist to (a) explore many interleavings
//! under random schedules and (b) make the 1-round vs 2-round latency gap
//! visible as simulated latency in the experiment harness.

use rand::Rng;

use crate::id::ProcessId;

/// How long a message spends in transit under the timed scheduler.
///
/// All durations are in ticks. Asynchrony in the *model* is unbounded; the
/// bounded distributions here only shape which interleavings a random run
/// explores — the scripted scheduler can still hold any message in transit
/// forever, which is how the lower-bound constructions work.
///
/// # Examples
///
/// ```
/// use fastreg_simnet::delay::DelayModel;
/// use fastreg_simnet::id::ProcessId;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let d = DelayModel::Uniform { lo: 10, hi: 20 };
/// let ticks = d.sample(ProcessId::new(0), ProcessId::new(1), &mut rng);
/// assert!((10..=20).contains(&ticks));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Uniformly distributed in `[lo, hi]` (inclusive).
    Uniform {
        /// Minimum delay in ticks.
        lo: u64,
        /// Maximum delay in ticks.
        hi: u64,
    },
    /// Mostly `base`, but with probability `spike_prob` (in [0, 1]) the
    /// message straggles for `spike` ticks instead. Models a heavy tail.
    Spike {
        /// Common-case delay in ticks.
        base: u64,
        /// Probability of a straggler.
        spike_prob: f64,
        /// Straggler delay in ticks.
        spike: u64,
    },
    /// Delay depends on whether either endpoint is in the "far" set:
    /// cross-zone links take `far` ticks, others `near`. Models one slow
    /// replica zone.
    TwoZone {
        /// Ids of the far-zone processes.
        far_members: Vec<ProcessId>,
        /// Delay when both endpoints are near.
        near: u64,
        /// Delay when either endpoint is far.
        far: u64,
    },
}

impl DelayModel {
    /// Samples a delay for a message from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` model has `lo > hi`.
    pub fn sample<R: Rng + ?Sized>(&self, from: ProcessId, to: ProcessId, rng: &mut R) -> u64 {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform delay with lo > hi");
                rng.gen_range(*lo..=*hi)
            }
            DelayModel::Spike {
                base,
                spike_prob,
                spike,
            } => {
                if rng.gen_bool(spike_prob.clamp(0.0, 1.0)) {
                    *spike
                } else {
                    *base
                }
            }
            DelayModel::TwoZone {
                far_members,
                near,
                far,
            } => {
                if far_members.contains(&from) || far_members.contains(&to) {
                    *far
                } else {
                    *near
                }
            }
        }
    }

    /// The smallest delay this model can produce (used for quiescence
    /// reasoning and bench reporting).
    pub fn min_delay(&self) -> u64 {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, .. } => *lo,
            DelayModel::Spike { base, spike, .. } => (*base).min(*spike),
            DelayModel::TwoZone { near, far, .. } => (*near).min(*far),
        }
    }
}

impl Default for DelayModel {
    /// One tick per hop: the "unit delay" model under which latency in ticks
    /// equals latency in message delays.
    fn default() -> Self {
        DelayModel::Constant(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let d = DelayModel::Constant(9);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(ProcessId::new(0), ProcessId::new(1), &mut r), 9);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = DelayModel::Uniform { lo: 3, hi: 8 };
        let mut r = rng();
        for _ in 0..200 {
            let s = d.sample(ProcessId::new(0), ProcessId::new(1), &mut r);
            assert!((3..=8).contains(&s));
        }
    }

    #[test]
    fn uniform_point_interval() {
        let d = DelayModel::Uniform { lo: 5, hi: 5 };
        let mut r = rng();
        assert_eq!(d.sample(ProcessId::new(0), ProcessId::new(1), &mut r), 5);
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn uniform_rejects_inverted_bounds() {
        let d = DelayModel::Uniform { lo: 9, hi: 3 };
        let mut r = rng();
        let _ = d.sample(ProcessId::new(0), ProcessId::new(1), &mut r);
    }

    #[test]
    fn spike_produces_both_values() {
        let d = DelayModel::Spike {
            base: 1,
            spike_prob: 0.5,
            spike: 100,
        };
        let mut r = rng();
        let samples: Vec<u64> = (0..200)
            .map(|_| d.sample(ProcessId::new(0), ProcessId::new(1), &mut r))
            .collect();
        assert!(samples.contains(&1));
        assert!(samples.contains(&100));
        assert!(samples.iter().all(|&s| s == 1 || s == 100));
    }

    #[test]
    fn spike_prob_zero_never_spikes() {
        let d = DelayModel::Spike {
            base: 2,
            spike_prob: 0.0,
            spike: 100,
        };
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(d.sample(ProcessId::new(0), ProcessId::new(1), &mut r), 2);
        }
    }

    #[test]
    fn two_zone_splits_by_membership() {
        let d = DelayModel::TwoZone {
            far_members: vec![ProcessId::new(2)],
            near: 1,
            far: 50,
        };
        let mut r = rng();
        assert_eq!(d.sample(ProcessId::new(0), ProcessId::new(1), &mut r), 1);
        assert_eq!(d.sample(ProcessId::new(0), ProcessId::new(2), &mut r), 50);
        assert_eq!(d.sample(ProcessId::new(2), ProcessId::new(0), &mut r), 50);
    }

    #[test]
    fn min_delay_per_model() {
        assert_eq!(DelayModel::Constant(4).min_delay(), 4);
        assert_eq!(DelayModel::Uniform { lo: 2, hi: 9 }.min_delay(), 2);
        assert_eq!(
            DelayModel::Spike {
                base: 3,
                spike_prob: 0.1,
                spike: 2
            }
            .min_delay(),
            2
        );
        assert_eq!(
            DelayModel::TwoZone {
                far_members: vec![],
                near: 1,
                far: 9
            }
            .min_delay(),
            1
        );
    }

    #[test]
    fn default_is_unit_delay() {
        assert_eq!(DelayModel::default(), DelayModel::Constant(1));
    }
}
