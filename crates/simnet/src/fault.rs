//! Crash-fault injection.
//!
//! The paper's crash model (§2.2): a faulty process takes a last step and
//! then stops; while broadcasting, "the sending process may crash after
//! sending messages to an arbitrary subset". [`CrashMode`] expresses both.

use crate::time::SimTime;

/// How a process crash is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Stop immediately: the process takes no further steps; messages it has
    /// already placed in transit remain in transit.
    Now,
    /// Crash during the process's *next* step, after it has emitted exactly
    /// `k` of that step's messages. The remaining messages of the step are
    /// lost with the process. This models the mid-broadcast crash the paper
    /// requires implementations to tolerate.
    AfterSends(usize),
}

/// The crash status of a process inside a world.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CrashState {
    /// Taking steps normally.
    #[default]
    Up,
    /// A [`CrashMode::AfterSends`] fault is armed for the next step.
    Armed(usize),
    /// Crashed (at the given time); takes no further steps.
    Down(SimTime),
}

impl CrashState {
    /// Returns `true` if the process can still take steps.
    pub fn is_up(self) -> bool {
        !matches!(self, CrashState::Down(_))
    }

    /// Returns the crash time, if crashed.
    pub fn crashed_at(self) -> Option<SimTime> {
        match self {
            CrashState::Down(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_up() {
        let s = CrashState::default();
        assert!(s.is_up());
        assert_eq!(s.crashed_at(), None);
    }

    #[test]
    fn armed_is_still_up() {
        assert!(CrashState::Armed(2).is_up());
    }

    #[test]
    fn down_reports_time() {
        let s = CrashState::Down(SimTime::from_ticks(5));
        assert!(!s.is_up());
        assert_eq!(s.crashed_at(), Some(SimTime::from_ticks(5)));
    }
}
