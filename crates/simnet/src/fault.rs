//! Crash-fault injection and serializable fault schedules.
//!
//! The paper's crash model (§2.2): a faulty process takes a last step and
//! then stops; while broadcasting, "the sending process may crash after
//! sending messages to an arbitrary subset". [`CrashMode`] expresses both.
//!
//! [`FaultScript`] lifts fault injection from imperative calls to *data*:
//! an ordered list of [`FaultEvent`]s, each firing when a run's logical
//! round counter reaches its trigger. Scripts serialize to a stable
//! line-oriented text form ([`FaultScript::render`] /
//! [`FaultScript::parse`]), which is what makes the schedule-exploration
//! counterexample files replayable byte-for-byte: the shrunk script is
//! committed, parsed back, and applied to a fresh world.

use std::fmt;

use crate::id::ProcessId;
use crate::time::SimTime;

/// How a process crash is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Stop immediately: the process takes no further steps; messages it has
    /// already placed in transit remain in transit.
    Now,
    /// Crash during the process's *next* step, after it has emitted exactly
    /// `k` of that step's messages. The remaining messages of the step are
    /// lost with the process. This models the mid-broadcast crash the paper
    /// requires implementations to tolerate.
    AfterSends(usize),
}

/// The crash status of a process inside a world.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CrashState {
    /// Taking steps normally.
    #[default]
    Up,
    /// A [`CrashMode::AfterSends`] fault is armed for the next step.
    Armed(usize),
    /// Crashed (at the given time); takes no further steps.
    Down(SimTime),
}

impl CrashState {
    /// Returns `true` if the process can still take steps.
    pub fn is_up(self) -> bool {
        !matches!(self, CrashState::Down(_))
    }

    /// Returns the crash time, if crashed.
    pub fn crashed_at(self) -> Option<SimTime> {
        match self {
            CrashState::Down(t) => Some(t),
            _ => None,
        }
    }
}

/// One scripted fault action.
///
/// Processes are named by their dense world index (see
/// [`ProcessId::index`]); the interpretation of links follows
/// [`World::block_link`](crate::world::World::block_link).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash the process immediately.
    Crash(ProcessId),
    /// Arm a mid-broadcast crash: the process crashes during its next
    /// step after emitting exactly `k` messages.
    CrashAfterSends(ProcessId, usize),
    /// Block the directed link `from → to` (messages stay in transit).
    Block(ProcessId, ProcessId),
    /// Heal the directed link `from → to`.
    Heal(ProcessId, ProcessId),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash(p) => write!(f, "crash {}", p.index()),
            FaultKind::CrashAfterSends(p, k) => {
                write!(f, "crash-after-sends {} {k}", p.index())
            }
            FaultKind::Block(a, b) => write!(f, "block {} {}", a.index(), b.index()),
            FaultKind::Heal(a, b) => write!(f, "heal {} {}", a.index(), b.index()),
        }
    }
}

/// A fault action together with its trigger round.
///
/// `at` counts the driving loop's rounds (whatever the driver's notion of
/// a round is — the schedule-exploration engine fires events at the top
/// of its interleaving loop), not virtual time: triggers stay meaningful
/// under any delay model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The round at which the action fires.
    pub at: u64,
    /// The action.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.at, self.kind)
    }
}

/// A fault schedule as a value: an ordered list of [`FaultEvent`]s.
///
/// The order is the application order for events sharing a trigger
/// round; [`FaultScript::render`] and [`FaultScript::parse`] round-trip
/// it exactly, one event per line.
///
/// # Examples
///
/// ```
/// use fastreg_simnet::fault::{FaultEvent, FaultKind, FaultScript};
/// use fastreg_simnet::id::ProcessId;
///
/// let mut script = FaultScript::new();
/// script.push(FaultEvent { at: 2, kind: FaultKind::Crash(ProcessId::new(4)) });
/// script.push(FaultEvent {
///     at: 5,
///     kind: FaultKind::Block(ProcessId::new(0), ProcessId::new(4)),
/// });
/// let text = script.render();
/// assert_eq!(FaultScript::parse(&text).unwrap(), script);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

/// Error from [`FaultScript::parse`]: the 1-based offending line and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultScriptParseError {
    /// 1-based line number within the script text.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultScriptParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault script line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for FaultScriptParseError {}

impl FaultScript {
    /// An empty script.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Appends an event (events fire in push order within a round).
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The events, in application order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the script has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events firing at round `at`, in application order.
    pub fn due(&self, at: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at == at)
    }

    /// The script with event `index` removed — the shrinker's move.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn without(&self, index: usize) -> FaultScript {
        let mut events = self.events.clone();
        events.remove(index);
        FaultScript { events }
    }

    /// Every directed link blocked by the script and not later healed —
    /// what a driver must heal to let stalled operations finish.
    pub fn unhealed_blocks(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut blocked: Vec<(ProcessId, ProcessId)> = Vec::new();
        for e in &self.events {
            match e.kind {
                FaultKind::Block(a, b) if !blocked.contains(&(a, b)) => blocked.push((a, b)),
                FaultKind::Heal(a, b) => blocked.retain(|&l| l != (a, b)),
                _ => {}
            }
        }
        blocked
    }

    /// Renders the script, one event per line (empty string for an empty
    /// script). The output parses back to an equal script.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{e}");
        }
        s
    }

    /// Parses a rendered script. Blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultScriptParseError`] naming the first malformed
    /// line.
    pub fn parse(text: &str) -> Result<Self, FaultScriptParseError> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |reason: &str| FaultScriptParseError {
                line: i + 1,
                reason: reason.to_string(),
            };
            let mut parts = line.split_whitespace();
            let at: u64 = parts
                .next()
                .ok_or_else(|| err("missing trigger round"))?
                .parse()
                .map_err(|_| err("trigger round is not a number"))?;
            let verb = parts.next().ok_or_else(|| err("missing action"))?;
            let mut arg = |what: &str| -> Result<u32, FaultScriptParseError> {
                parts
                    .next()
                    .ok_or_else(|| err(&format!("missing {what}")))?
                    .parse()
                    .map_err(|_| err(&format!("{what} is not a number")))
            };
            let kind = match verb {
                "crash" => FaultKind::Crash(ProcessId::new(arg("process")?)),
                "crash-after-sends" => {
                    let p = arg("process")?;
                    let k = arg("send count")?;
                    FaultKind::CrashAfterSends(ProcessId::new(p), k as usize)
                }
                "block" => {
                    let a = arg("source")?;
                    let b = arg("target")?;
                    FaultKind::Block(ProcessId::new(a), ProcessId::new(b))
                }
                "heal" => {
                    let a = arg("source")?;
                    let b = arg("target")?;
                    FaultKind::Heal(ProcessId::new(a), ProcessId::new(b))
                }
                other => return Err(err(&format!("unknown action '{other}'"))),
            };
            if parts.next().is_some() {
                return Err(err("trailing tokens after the action"));
            }
            events.push(FaultEvent { at, kind });
        }
        Ok(FaultScript { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_up() {
        let s = CrashState::default();
        assert!(s.is_up());
        assert_eq!(s.crashed_at(), None);
    }

    #[test]
    fn armed_is_still_up() {
        assert!(CrashState::Armed(2).is_up());
    }

    #[test]
    fn down_reports_time() {
        let s = CrashState::Down(SimTime::from_ticks(5));
        assert!(!s.is_up());
        assert_eq!(s.crashed_at(), Some(SimTime::from_ticks(5)));
    }

    fn sample_script() -> FaultScript {
        let mut s = FaultScript::new();
        s.push(FaultEvent {
            at: 0,
            kind: FaultKind::Block(ProcessId::new(0), ProcessId::new(5)),
        });
        s.push(FaultEvent {
            at: 3,
            kind: FaultKind::CrashAfterSends(ProcessId::new(0), 2),
        });
        s.push(FaultEvent {
            at: 3,
            kind: FaultKind::Crash(ProcessId::new(6)),
        });
        s.push(FaultEvent {
            at: 9,
            kind: FaultKind::Heal(ProcessId::new(0), ProcessId::new(5)),
        });
        s
    }

    #[test]
    fn script_round_trips_through_text() {
        let s = sample_script();
        let text = s.render();
        assert_eq!(FaultScript::parse(&text).unwrap(), s);
        // Rendering is idempotent: parse(render(x)).render() == render(x).
        assert_eq!(FaultScript::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn empty_script_round_trips() {
        let s = FaultScript::new();
        assert!(s.is_empty());
        assert_eq!(s.render(), "");
        assert_eq!(FaultScript::parse("").unwrap(), s);
        assert_eq!(FaultScript::parse("\n  \n").unwrap(), s);
    }

    #[test]
    fn due_filters_by_round_in_order() {
        let s = sample_script();
        let at3: Vec<FaultKind> = s.due(3).map(|e| e.kind).collect();
        assert_eq!(
            at3,
            vec![
                FaultKind::CrashAfterSends(ProcessId::new(0), 2),
                FaultKind::Crash(ProcessId::new(6)),
            ]
        );
        assert_eq!(s.due(7).count(), 0);
    }

    #[test]
    fn without_removes_one_event() {
        let s = sample_script();
        let smaller = s.without(1);
        assert_eq!(smaller.len(), s.len() - 1);
        assert!(!smaller
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CrashAfterSends(..))));
    }

    #[test]
    fn unhealed_blocks_tracks_heals() {
        let s = sample_script();
        // The single block is healed at round 9: nothing left.
        assert!(s.unhealed_blocks().is_empty());
        let unhealed = s.without(3);
        assert_eq!(
            unhealed.unhealed_blocks(),
            vec![(ProcessId::new(0), ProcessId::new(5))]
        );
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = FaultScript::parse("0 crash 1\nnonsense").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let err = FaultScript::parse("0 warp 1").unwrap_err();
        assert!(err.reason.contains("unknown action"));
        let err = FaultScript::parse("0 crash").unwrap_err();
        assert!(err.reason.contains("missing process"));
        let err = FaultScript::parse("x crash 1").unwrap_err();
        assert!(err.reason.contains("not a number"));
        let err = FaultScript::parse("0 crash 1 2").unwrap_err();
        assert!(err.reason.contains("trailing"));
    }
}
