//! Run-level message statistics.

use std::collections::BTreeMap;

use crate::id::ProcessId;

/// Counters maintained by a [`World`](crate::world::World) across a run.
///
/// Message *complexity* comparisons between protocols (e.g. the fast read's
/// `2S` messages vs the ABD read's `4S`) are computed from these counters by
/// the experiment harness.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Total messages placed in transit.
    pub sent: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Total messages dropped (scripted or to crashed receivers).
    pub dropped: u64,
    /// Total steps executed (deliveries + injections).
    pub steps: u64,
    /// Per-sender send counts.
    pub sent_by: BTreeMap<ProcessId, u64>,
    /// Per-receiver delivery counts.
    pub delivered_to: BTreeMap<ProcessId, u64>,
}

impl NetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a send by `from`.
    pub fn record_send(&mut self, from: ProcessId) {
        self.sent += 1;
        *self.sent_by.entry(from).or_insert(0) += 1;
    }

    /// Records a delivery to `to`.
    pub fn record_delivery(&mut self, to: ProcessId) {
        self.delivered += 1;
        self.steps += 1;
        *self.delivered_to.entry(to).or_insert(0) += 1;
    }

    /// Records a dropped message.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Records an injected step (environment invocation).
    pub fn record_injection(&mut self) {
        self.steps += 1;
    }

    /// Messages still unaccounted for (in transit at the end of the run).
    pub fn in_transit(&self) -> u64 {
        self.sent - self.delivered - self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::new();
        let a = ProcessId::new(0);
        let b = ProcessId::new(1);
        s.record_send(a);
        s.record_send(a);
        s.record_send(b);
        s.record_delivery(b);
        s.record_drop();
        s.record_injection();
        assert_eq!(s.sent, 3);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.steps, 2);
        assert_eq!(s.sent_by[&a], 2);
        assert_eq!(s.sent_by[&b], 1);
        assert_eq!(s.delivered_to[&b], 1);
        assert_eq!(s.in_transit(), 1);
    }

    #[test]
    fn default_is_zero() {
        let s = NetStats::default();
        assert_eq!(s.sent, 0);
        assert_eq!(s.in_transit(), 0);
    }
}
