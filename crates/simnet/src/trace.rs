//! Structured run traces.
//!
//! Every world records (bounded) structured events: sends, deliveries,
//! injections, crashes, drops. Traces serve three purposes: debugging
//! protocol code, rendering the lower-bound proof constructions in the
//! `lower_bound_gallery` example, and asserting simulator determinism (two
//! runs with the same seed produce byte-identical traces).

use std::fmt;

use crate::envelope::MsgId;
use crate::id::ProcessId;
use crate::time::SimTime;

/// One recorded simulator event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEntry {
    /// A message entered the in-transit set.
    Send {
        /// When the sender's step completed.
        at: SimTime,
        /// Message id.
        id: MsgId,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// A message was delivered in a step of `to`.
    Deliver {
        /// Delivery time.
        at: SimTime,
        /// Message id.
        id: MsgId,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
    },
    /// The environment injected a message (operation invocation) into `to`.
    Inject {
        /// Injection time.
        at: SimTime,
        /// Target process.
        to: ProcessId,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// A process crashed.
    Crash {
        /// Crash time.
        at: SimTime,
        /// The crashed process.
        process: ProcessId,
        /// Number of messages of the in-progress step that were still sent
        /// (only meaningful for mid-broadcast crashes).
        sent_before_crash: usize,
    },
    /// A message was explicitly dropped (scripted or Byzantine-network
    /// action) or was addressed to a crashed process.
    Drop {
        /// Drop time.
        at: SimTime,
        /// Message id.
        id: MsgId,
        /// Why it was dropped.
        reason: DropReason,
    },
}

/// Why a message left the in-transit set without being delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The test driver or adversary discarded it.
    Scripted,
    /// The receiver had crashed; equivalent to leaving the message in
    /// transit forever.
    ReceiverCrashed,
}

impl TraceEntry {
    /// The time at which this event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEntry::Send { at, .. }
            | TraceEntry::Deliver { at, .. }
            | TraceEntry::Inject { at, .. }
            | TraceEntry::Crash { at, .. }
            | TraceEntry::Drop { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEntry::Send {
                at,
                id,
                from,
                to,
                payload,
            } => write!(f, "[{at:>6}] send    {id} {from} -> {to}: {payload}"),
            TraceEntry::Deliver { at, id, from, to } => {
                write!(f, "[{at:>6}] deliver {id} {from} -> {to}")
            }
            TraceEntry::Inject { at, to, payload } => {
                write!(f, "[{at:>6}] inject  -> {to}: {payload}")
            }
            TraceEntry::Crash {
                at,
                process,
                sent_before_crash,
            } => write!(
                f,
                "[{at:>6}] crash   {process} (sent {sent_before_crash} of step)"
            ),
            TraceEntry::Drop { at, id, reason } => {
                write!(f, "[{at:>6}] drop    {id} ({reason:?})")
            }
        }
    }
}

/// A bounded event log.
///
/// Once `capacity` entries have been recorded, further entries are counted
/// but not stored, so long random runs cannot exhaust memory.
#[derive(Clone, Debug)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    suppressed: u64,
}

impl Trace {
    /// Creates a trace that stores at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            entries: Vec::new(),
            capacity,
            suppressed: 0,
        }
    }

    /// Creates a trace that stores nothing (counting only).
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Records an entry (or counts it as suppressed when full).
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.suppressed += 1;
        }
    }

    /// The stored entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries that were recorded but not stored.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// A stable 64-bit fingerprint of the trace: FNV-1a over the rendered
    /// entries plus the suppressed count.
    ///
    /// Two runs have equal fingerprints iff their stored traces render
    /// identically — the compact form of the scheduler-equivalence
    /// "byte-identical traces" check, used by replayable counterexample
    /// files to assert that a replay reproduced the original run
    /// event-for-event without embedding the whole trace.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for e in &self.entries {
            eat(e.to_string().as_bytes());
            eat(b"\n");
        }
        eat(&self.suppressed.to_le_bytes());
        h
    }

    /// The maximum message-reorder depth observed in the stored entries.
    ///
    /// For each delivery, the depth is the number of messages to the
    /// *same receiver* that were sent earlier and were still in flight
    /// (neither delivered nor dropped) when this one arrived — i.e. how
    /// many older messages this delivery overtook. A FIFO run scores 0;
    /// the adversarial schedules the lower-bound constructions need
    /// score high. Coverage-guided exploration uses the depth as a
    /// schedule-shape signal.
    ///
    /// Computed over the *stored* entries only: a trace that hit its
    /// capacity reports the depth of the recorded prefix.
    pub fn max_reorder_depth(&self) -> u64 {
        use std::collections::BTreeMap;
        // Per-receiver in-flight message ids, in send order.
        let mut inflight: BTreeMap<ProcessId, Vec<MsgId>> = BTreeMap::new();
        // Receiver of each in-flight message (drops name only the id).
        let mut dest: BTreeMap<MsgId, ProcessId> = BTreeMap::new();
        let mut max_depth = 0u64;
        for e in &self.entries {
            match e {
                TraceEntry::Send { id, to, .. } => {
                    inflight.entry(*to).or_default().push(*id);
                    dest.insert(*id, *to);
                }
                TraceEntry::Deliver { id, to, .. } => {
                    if let Some(queue) = inflight.get_mut(to) {
                        if let Some(pos) = queue.iter().position(|m| m == id) {
                            max_depth = max_depth.max(pos as u64);
                            queue.remove(pos);
                            dest.remove(id);
                        }
                    }
                }
                TraceEntry::Drop { id, .. } => {
                    if let Some(to) = dest.remove(id) {
                        if let Some(queue) = inflight.get_mut(&to) {
                            queue.retain(|m| m != id);
                        }
                    }
                }
                TraceEntry::Inject { .. } | TraceEntry::Crash { .. } => {}
            }
        }
        max_depth
    }

    /// Renders the stored entries, one per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.entries {
            let _ = writeln!(s, "{e}");
        }
        if self.suppressed > 0 {
            let _ = writeln!(s, "... and {} suppressed entries", self.suppressed);
        }
        s
    }
}

impl Default for Trace {
    /// A generous default bound suitable for unit tests and the gallery
    /// example.
    fn default() -> Self {
        Self::with_capacity(100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send_entry(tick: u64) -> TraceEntry {
        TraceEntry::Send {
            at: SimTime::from_ticks(tick),
            id: MsgId(1),
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            payload: "x".to_string(),
        }
    }

    #[test]
    fn records_until_capacity_then_counts() {
        let mut t = Trace::with_capacity(2);
        t.record(send_entry(1));
        t.record(send_entry(2));
        t.record(send_entry(3));
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.suppressed(), 1);
    }

    #[test]
    fn disabled_stores_nothing() {
        let mut t = Trace::disabled();
        t.record(send_entry(1));
        assert!(t.entries().is_empty());
        assert_eq!(t.suppressed(), 1);
    }

    #[test]
    fn entry_time_accessor() {
        assert_eq!(send_entry(9).at(), SimTime::from_ticks(9));
        let crash = TraceEntry::Crash {
            at: SimTime::from_ticks(3),
            process: ProcessId::new(1),
            sent_before_crash: 0,
        };
        assert_eq!(crash.at(), SimTime::from_ticks(3));
    }

    #[test]
    fn fingerprint_tracks_render() {
        let mut a = Trace::with_capacity(10);
        let mut b = Trace::with_capacity(10);
        a.record(send_entry(1));
        b.record(send_entry(1));
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(send_entry(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Suppression is part of the identity: a full trace that dropped
        // different numbers of entries is a different run.
        let mut c = Trace::with_capacity(1);
        let mut d = Trace::with_capacity(1);
        c.record(send_entry(1));
        d.record(send_entry(1));
        d.record(send_entry(2));
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    fn wire(id: u64, to: u32) -> (TraceEntry, TraceEntry) {
        let send = TraceEntry::Send {
            at: SimTime::from_ticks(id),
            id: MsgId(id),
            from: ProcessId::new(0),
            to: ProcessId::new(to),
            payload: "x".to_string(),
        };
        let deliver = TraceEntry::Deliver {
            at: SimTime::from_ticks(id + 100),
            id: MsgId(id),
            from: ProcessId::new(0),
            to: ProcessId::new(to),
        };
        (send, deliver)
    }

    #[test]
    fn fifo_delivery_has_zero_reorder_depth() {
        let mut t = Trace::default();
        let (s1, d1) = wire(1, 1);
        let (s2, d2) = wire(2, 1);
        for e in [s1, s2, d1, d2] {
            t.record(e);
        }
        assert_eq!(t.max_reorder_depth(), 0);
    }

    #[test]
    fn overtaking_counts_per_receiver() {
        // m1..m3 sent to receiver 1; m3 delivered first (overtakes two),
        // then m1, m2 (in order among what remains).
        let mut t = Trace::default();
        let (s1, d1) = wire(1, 1);
        let (s2, d2) = wire(2, 1);
        let (s3, d3) = wire(3, 1);
        for e in [s1, s2, s3, d3, d1, d2] {
            t.record(e);
        }
        assert_eq!(t.max_reorder_depth(), 2);

        // The same sends split across two receivers never overtake:
        // reordering is per receiver, not global.
        let mut t = Trace::default();
        let (s1, d1) = wire(1, 1);
        let (s2, d2) = wire(2, 2);
        for e in [s1, s2, d2, d1] {
            t.record(e);
        }
        assert_eq!(t.max_reorder_depth(), 0);
    }

    #[test]
    fn drops_leave_the_inflight_window() {
        // m1 is dropped before m2 arrives: m2 overtakes nothing.
        let mut t = Trace::default();
        let (s1, _) = wire(1, 1);
        let (s2, d2) = wire(2, 1);
        t.record(s1);
        t.record(s2);
        t.record(TraceEntry::Drop {
            at: SimTime::from_ticks(50),
            id: MsgId(1),
            reason: DropReason::Scripted,
        });
        t.record(d2);
        assert_eq!(t.max_reorder_depth(), 0);
    }

    #[test]
    fn render_mentions_suppressed() {
        let mut t = Trace::with_capacity(1);
        t.record(send_entry(1));
        t.record(send_entry(2));
        let s = t.render();
        assert!(s.contains("send"));
        assert!(s.contains("suppressed"));
    }

    #[test]
    fn display_formats_each_kind() {
        let entries = vec![
            send_entry(1),
            TraceEntry::Deliver {
                at: SimTime::ZERO,
                id: MsgId(0),
                from: ProcessId::new(0),
                to: ProcessId::new(1),
            },
            TraceEntry::Inject {
                at: SimTime::ZERO,
                to: ProcessId::new(1),
                payload: "op".into(),
            },
            TraceEntry::Crash {
                at: SimTime::ZERO,
                process: ProcessId::new(2),
                sent_before_crash: 1,
            },
            TraceEntry::Drop {
                at: SimTime::ZERO,
                id: MsgId(4),
                reason: DropReason::Scripted,
            },
        ];
        for e in entries {
            assert!(!format!("{e}").is_empty());
        }
    }
}
