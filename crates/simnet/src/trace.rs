//! Structured run traces.
//!
//! Every world records (bounded) structured events: sends, deliveries,
//! injections, crashes, drops. Traces serve three purposes: debugging
//! protocol code, rendering the lower-bound proof constructions in the
//! `lower_bound_gallery` example, and asserting simulator determinism (two
//! runs with the same seed produce byte-identical traces).

use std::fmt;

use crate::envelope::MsgId;
use crate::id::ProcessId;
use crate::time::SimTime;

/// One recorded simulator event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEntry {
    /// A message entered the in-transit set.
    Send {
        /// When the sender's step completed.
        at: SimTime,
        /// Message id.
        id: MsgId,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// A message was delivered in a step of `to`.
    Deliver {
        /// Delivery time.
        at: SimTime,
        /// Message id.
        id: MsgId,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
    },
    /// The environment injected a message (operation invocation) into `to`.
    Inject {
        /// Injection time.
        at: SimTime,
        /// Target process.
        to: ProcessId,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// A process crashed.
    Crash {
        /// Crash time.
        at: SimTime,
        /// The crashed process.
        process: ProcessId,
        /// Number of messages of the in-progress step that were still sent
        /// (only meaningful for mid-broadcast crashes).
        sent_before_crash: usize,
    },
    /// A message was explicitly dropped (scripted or Byzantine-network
    /// action) or was addressed to a crashed process.
    Drop {
        /// Drop time.
        at: SimTime,
        /// Message id.
        id: MsgId,
        /// Why it was dropped.
        reason: DropReason,
    },
}

/// Why a message left the in-transit set without being delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The test driver or adversary discarded it.
    Scripted,
    /// The receiver had crashed; equivalent to leaving the message in
    /// transit forever.
    ReceiverCrashed,
}

impl TraceEntry {
    /// The time at which this event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEntry::Send { at, .. }
            | TraceEntry::Deliver { at, .. }
            | TraceEntry::Inject { at, .. }
            | TraceEntry::Crash { at, .. }
            | TraceEntry::Drop { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEntry::Send {
                at,
                id,
                from,
                to,
                payload,
            } => write!(f, "[{at:>6}] send    {id} {from} -> {to}: {payload}"),
            TraceEntry::Deliver { at, id, from, to } => {
                write!(f, "[{at:>6}] deliver {id} {from} -> {to}")
            }
            TraceEntry::Inject { at, to, payload } => {
                write!(f, "[{at:>6}] inject  -> {to}: {payload}")
            }
            TraceEntry::Crash {
                at,
                process,
                sent_before_crash,
            } => write!(
                f,
                "[{at:>6}] crash   {process} (sent {sent_before_crash} of step)"
            ),
            TraceEntry::Drop { at, id, reason } => {
                write!(f, "[{at:>6}] drop    {id} ({reason:?})")
            }
        }
    }
}

/// A bounded event log.
///
/// Once `capacity` entries have been recorded, further entries are counted
/// but not stored, so long random runs cannot exhaust memory.
#[derive(Clone, Debug)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    suppressed: u64,
}

impl Trace {
    /// Creates a trace that stores at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            entries: Vec::new(),
            capacity,
            suppressed: 0,
        }
    }

    /// Creates a trace that stores nothing (counting only).
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Records an entry (or counts it as suppressed when full).
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.suppressed += 1;
        }
    }

    /// The stored entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries that were recorded but not stored.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// A stable 64-bit fingerprint of the trace: FNV-1a over the rendered
    /// entries plus the suppressed count.
    ///
    /// Two runs have equal fingerprints iff their stored traces render
    /// identically — the compact form of the scheduler-equivalence
    /// "byte-identical traces" check, used by replayable counterexample
    /// files to assert that a replay reproduced the original run
    /// event-for-event without embedding the whole trace.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for e in &self.entries {
            eat(e.to_string().as_bytes());
            eat(b"\n");
        }
        eat(&self.suppressed.to_le_bytes());
        h
    }

    /// Renders the stored entries, one per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.entries {
            let _ = writeln!(s, "{e}");
        }
        if self.suppressed > 0 {
            let _ = writeln!(s, "... and {} suppressed entries", self.suppressed);
        }
        s
    }
}

impl Default for Trace {
    /// A generous default bound suitable for unit tests and the gallery
    /// example.
    fn default() -> Self {
        Self::with_capacity(100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send_entry(tick: u64) -> TraceEntry {
        TraceEntry::Send {
            at: SimTime::from_ticks(tick),
            id: MsgId(1),
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            payload: "x".to_string(),
        }
    }

    #[test]
    fn records_until_capacity_then_counts() {
        let mut t = Trace::with_capacity(2);
        t.record(send_entry(1));
        t.record(send_entry(2));
        t.record(send_entry(3));
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.suppressed(), 1);
    }

    #[test]
    fn disabled_stores_nothing() {
        let mut t = Trace::disabled();
        t.record(send_entry(1));
        assert!(t.entries().is_empty());
        assert_eq!(t.suppressed(), 1);
    }

    #[test]
    fn entry_time_accessor() {
        assert_eq!(send_entry(9).at(), SimTime::from_ticks(9));
        let crash = TraceEntry::Crash {
            at: SimTime::from_ticks(3),
            process: ProcessId::new(1),
            sent_before_crash: 0,
        };
        assert_eq!(crash.at(), SimTime::from_ticks(3));
    }

    #[test]
    fn fingerprint_tracks_render() {
        let mut a = Trace::with_capacity(10);
        let mut b = Trace::with_capacity(10);
        a.record(send_entry(1));
        b.record(send_entry(1));
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(send_entry(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Suppression is part of the identity: a full trace that dropped
        // different numbers of entries is a different run.
        let mut c = Trace::with_capacity(1);
        let mut d = Trace::with_capacity(1);
        c.record(send_entry(1));
        d.record(send_entry(1));
        d.record(send_entry(2));
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn render_mentions_suppressed() {
        let mut t = Trace::with_capacity(1);
        t.record(send_entry(1));
        t.record(send_entry(2));
        let s = t.render();
        assert!(s.contains("send"));
        assert!(s.contains("suppressed"));
    }

    #[test]
    fn display_formats_each_kind() {
        let entries = vec![
            send_entry(1),
            TraceEntry::Deliver {
                at: SimTime::ZERO,
                id: MsgId(0),
                from: ProcessId::new(0),
                to: ProcessId::new(1),
            },
            TraceEntry::Inject {
                at: SimTime::ZERO,
                to: ProcessId::new(1),
                payload: "op".into(),
            },
            TraceEntry::Crash {
                at: SimTime::ZERO,
                process: ProcessId::new(2),
                sent_before_crash: 1,
            },
            TraceEntry::Drop {
                at: SimTime::ZERO,
                id: MsgId(4),
                reason: DropReason::Scripted,
            },
        ];
        for e in entries {
            assert!(!format!("{e}").is_empty());
        }
    }
}
