//! Scheduler equivalence: the indexed event-queue scheduler must be
//! observationally identical to the reference linear-scan scheduler.
//!
//! Two worlds with the same seed and actors are driven by the same
//! random command sequence — injections, timed steps, deadline runs,
//! scripted deliveries and drops, crashes, blocked/healed links — with
//! one world using the O(log n) heap scheduler (`step_timed`,
//! `run_until`, `run_until_quiescent`) and the other the pre-index
//! linear scan (`step_timed_reference`, `run_until_reference`). The
//! traces must be byte-identical and the clocks, statistics and
//! in-transit pools equal, for every schedule proptest generates.

use proptest::prelude::*;

use fastreg_simnet::delay::DelayModel;
use fastreg_simnet::prelude::*;
use fastreg_simnet::runner::SimConfig;

const N: u32 = 4;

#[derive(Clone, Debug)]
enum Msg {
    /// Ack the sender and, while the hop budget lasts, ping everyone.
    Ping(u8),
    Ack,
}

struct Node {
    n: u32,
}

impl Automaton for Node {
    type Msg = Msg;

    fn on_message(&mut self, from: ProcessId, msg: Msg, out: &mut Outbox<Msg>) {
        if let Msg::Ping(k) = msg {
            if from != ProcessId::EXTERNAL {
                out.send(from, Msg::Ack);
            }
            if k > 0 {
                let me = out.this();
                out.broadcast(
                    (0..self.n).map(ProcessId::new).filter(|&q| q != me),
                    Msg::Ping(k - 1),
                );
            }
        }
    }
}

/// One randomly generated world command, applied identically to both
/// worlds (the timed variants dispatch on the scheduler under test).
#[derive(Clone, Debug)]
enum Cmd {
    Inject { p: u8, hops: u8 },
    StepTimed(u8),
    RunUntil(u8),
    DeliverNth(u8),
    DropNth(u8),
    Crash(u8),
    Block(u8, u8),
    Heal(u8, u8),
    Quiesce,
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0u8..8, 0u8..3).prop_map(|(p, hops)| Cmd::Inject { p, hops }),
        (1u8..5).prop_map(Cmd::StepTimed),
        (0u8..40).prop_map(Cmd::RunUntil),
        (0u8..32).prop_map(Cmd::DeliverNth),
        (0u8..32).prop_map(Cmd::DropNth),
        (0u8..8).prop_map(Cmd::Crash),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Cmd::Block(a, b)),
        (0u8..8, 0u8..8).prop_map(|(a, b)| Cmd::Heal(a, b)),
        Just(Cmd::Quiesce),
    ]
}

fn world_of(seed: u64) -> World<Msg> {
    let mut w = World::new(SimConfig {
        seed,
        delay: DelayModel::Uniform { lo: 1, hi: 25 },
        max_steps: 100_000,
        ..SimConfig::default()
    });
    for _ in 0..N {
        w.add_actor(Box::new(Node { n: N }));
    }
    w
}

fn pid(raw: u8) -> ProcessId {
    ProcessId::new(raw as u32 % N)
}

fn apply(w: &mut World<Msg>, cmds: &[Cmd], reference: bool) {
    let step = |w: &mut World<Msg>| {
        if reference {
            w.step_timed_reference()
        } else {
            w.step_timed()
        }
    };
    for cmd in cmds {
        match *cmd {
            Cmd::Inject { p, hops } => w.inject(pid(p), Msg::Ping(hops)),
            Cmd::StepTimed(k) => {
                for _ in 0..k {
                    if !step(w) {
                        break;
                    }
                }
            }
            Cmd::RunUntil(k) => {
                let deadline = w.now() + k as u64;
                if reference {
                    w.run_until_reference(deadline);
                } else {
                    w.run_until(deadline);
                }
            }
            Cmd::DeliverNth(i) => {
                let ids = w.pending_ids_matching(|_| true);
                if !ids.is_empty() {
                    // Delivery to a crashed receiver fails the same way
                    // on both sides; ignore it.
                    let _ = w.deliver(ids[i as usize % ids.len()]);
                }
            }
            Cmd::DropNth(i) => {
                let ids = w.pending_ids_matching(|_| true);
                if !ids.is_empty() {
                    let victim = ids[i as usize % ids.len()];
                    w.drop_matching(|e| e.id == victim);
                }
            }
            Cmd::Crash(p) => w.crash(pid(p)),
            Cmd::Block(a, b) => w.block_link(pid(a), pid(b)),
            Cmd::Heal(a, b) => w.heal_link(pid(a), pid(b)),
            Cmd::Quiesce => {
                if reference {
                    while step(w) {}
                } else {
                    w.run_until_quiescent().expect("hop budget is finite");
                }
            }
        }
    }
    // Finish every run deterministically so pools compare at rest.
    while step(w) {}
}

fn observe(w: &World<Msg>) -> (String, u64, u64, u64, u64, u64, Vec<MsgId>) {
    (
        w.trace().render(),
        w.now().ticks(),
        w.stats().sent,
        w.stats().delivered,
        w.stats().dropped,
        w.stats().steps,
        w.pending().map(|e| e.id).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥ 200 random schedules: heap scheduler ≡ linear-scan reference.
    #[test]
    fn heap_and_linear_scan_schedulers_are_trace_identical(
        seed in 0u64..10_000,
        cmds in proptest::collection::vec(cmd_strategy(), 1..60),
    ) {
        let mut heap_world = world_of(seed);
        let mut scan_world = world_of(seed);
        apply(&mut heap_world, &cmds, false);
        apply(&mut scan_world, &cmds, true);
        let heap_obs = observe(&heap_world);
        let scan_obs = observe(&scan_world);
        prop_assert_eq!(&heap_obs.0, &scan_obs.0, "traces diverged under {:?}", cmds);
        prop_assert_eq!(heap_obs, scan_obs);
    }

    /// The mixed-driving invariant in its sharpest form: scripted
    /// deliveries and drops interleaved with timed steps never make the
    /// heap scheduler deliver a message twice or lose one.
    #[test]
    fn conservation_under_mixed_driving(
        seed in 0u64..10_000,
        cmds in proptest::collection::vec(cmd_strategy(), 1..60),
    ) {
        let mut w = world_of(seed);
        apply(&mut w, &cmds, false);
        let s = w.stats();
        prop_assert_eq!(
            s.sent,
            s.delivered + s.dropped + w.pending_len() as u64
        );
    }
}
