//! Lamport regular-register semantics for SWMR histories.
//!
//! §8 of the paper contrasts fast *atomic* registers with fast *regular*
//! ones: a regular register allows a fast implementation whenever
//! `t < S/2`, irrespective of the number of readers, at the price of weaker
//! consistency — "a reader might not return the last value written" under
//! concurrency, and in particular new/old inversions across readers are
//! allowed.
//!
//! A complete read of a regular register must return either the value of
//! the *last write preceding* the read, or the value of *some write
//! concurrent* with the read (with `⊥` standing for the absent zeroth
//! write). Unlike atomicity there is no condition linking different reads.

#[allow(clippy::disallowed_types)]
use std::collections::HashMap; // fastreg-lint: allow(nondet-order): pure keyed lookup (value -> write index), never iterated
use std::fmt;

use crate::history::{History, OpId, OpKind, Operation, RegValue};
use crate::swmr::AtomicityViolation;

/// Why a history is not regular.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegularityViolation {
    /// Preconditions (single sequential writer, distinct values) failed;
    /// reuses the atomicity checker's descriptions.
    Precondition(AtomicityViolation),
    /// A read returned a value that was never written.
    UnwrittenValue {
        /// The offending read.
        read: OpId,
        /// The value it returned.
        value: RegValue,
    },
    /// A read returned a value that is neither the last preceding write's
    /// nor a concurrent write's.
    StaleOrFutureValue {
        /// The offending read.
        read: OpId,
        /// Index of the write it returned (0 for ⊥).
        returned_index: usize,
        /// Index of the last write preceding the read (0 if none).
        last_preceding_index: usize,
    },
}

impl fmt::Display for RegularityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegularityViolation::Precondition(v) => write!(f, "precondition: {v}"),
            RegularityViolation::UnwrittenValue { read, value } => {
                write!(f, "{read:?} returned unwritten value {value}")
            }
            RegularityViolation::StaleOrFutureValue {
                read,
                returned_index,
                last_preceding_index,
            } => write!(
                f,
                "{read:?} returned val_{returned_index}, which is neither the last preceding \
                 write (val_{last_preceding_index}) nor concurrent with the read"
            ),
        }
    }
}

impl std::error::Error for RegularityViolation {}

/// Checks SWMR regularity.
///
/// # Errors
///
/// Returns the first violation found. Requires the same preconditions as
/// [`check_swmr_atomicity`](crate::swmr::check_swmr_atomicity): one
/// sequential writer, distinct written values.
///
/// # Examples
///
/// ```
/// use fastreg_atomicity::history::{History, RegValue};
/// use fastreg_atomicity::regularity::check_swmr_regularity;
///
/// // A new/old inversion across two readers: not atomic, but regular, as
/// // long as both reads overlap the write.
/// let mut h = History::new();
/// let w = h.invoke_write(0, 1, 0);
/// h.respond(w, None, 100);
/// let r1 = h.invoke_read(1, 10);
/// h.respond(r1, Some(RegValue::Val(1)), 20);
/// let r2 = h.invoke_read(2, 30);
/// h.respond(r2, Some(RegValue::Bottom), 40);
/// assert!(check_swmr_regularity(&h).is_ok());
/// ```
pub fn check_swmr_regularity(history: &History) -> Result<(), RegularityViolation> {
    let mut writes: Vec<&Operation> = history.writes().collect();
    writes.sort_by_key(|w| w.invoked_at);

    // Reuse the atomicity checker's structural validation by re-deriving
    // its preconditions here.
    if let Some(first) = writes.first() {
        if writes.iter().any(|w| w.proc != first.proc) {
            return Err(RegularityViolation::Precondition(
                AtomicityViolation::MalformedWrites {
                    detail: "multiple writer processes".to_string(),
                },
            ));
        }
    }
    for pair in writes.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        match a.responded_at {
            Some(r) if r <= b.invoked_at => {}
            _ => {
                return Err(RegularityViolation::Precondition(
                    AtomicityViolation::MalformedWrites {
                        detail: format!("{:?} and {:?} overlap", a.id, b.id),
                    },
                ));
            }
        }
    }

    #[allow(clippy::disallowed_types)]
    // fastreg-lint: allow(nondet-order): O(1) keyed lookup on the checker hot path; only get/insert, never iterated
    let mut index_of: HashMap<u64, usize> = HashMap::new();
    for (i, w) in writes.iter().enumerate() {
        let value = match w.kind {
            OpKind::Write { value } => value,
            OpKind::Read => unreachable!(),
        };
        if index_of.insert(value, i + 1).is_some() {
            return Err(RegularityViolation::Precondition(
                AtomicityViolation::DuplicateWrittenValue { value },
            ));
        }
    }

    for read in history.reads().filter(|r| r.is_complete()) {
        let returned = read.returned.unwrap_or(RegValue::Bottom);
        let k = match returned {
            RegValue::Bottom => 0,
            RegValue::Val(v) => match index_of.get(&v) {
                Some(&k) => k,
                None => {
                    return Err(RegularityViolation::UnwrittenValue {
                        read: read.id,
                        value: returned,
                    })
                }
            },
        };
        let last_preceding = writes
            .iter()
            .enumerate()
            .filter(|(_, w)| w.precedes(read))
            .map(|(i, _)| i + 1)
            .max()
            .unwrap_or(0);
        let ok = if k == last_preceding {
            true
        } else if k == 0 {
            // ⊥ is only legal if no write precedes the read.
            last_preceding == 0
        } else {
            // Legal iff wr_k is concurrent with the read.
            writes[k - 1].concurrent_with(read)
        };
        if !ok {
            return Err(RegularityViolation::StaleOrFutureValue {
                read: read.id,
                returned_index: k,
                last_preceding_index: last_preceding,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swmr::check_swmr_atomicity;

    fn w(h: &mut History, v: u64, inv: u64, resp: u64) {
        let id = h.invoke_write(0, v, inv);
        h.respond(id, None, resp);
    }

    fn r(h: &mut History, proc: u32, ret: RegValue, inv: u64, resp: u64) -> OpId {
        let id = h.invoke_read(proc, inv);
        h.respond(id, Some(ret), resp);
        id
    }

    #[test]
    fn empty_is_regular() {
        assert!(check_swmr_regularity(&History::new()).is_ok());
    }

    #[test]
    fn sequential_history_is_regular() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Val(1), 2, 3);
        w(&mut h, 2, 4, 5);
        r(&mut h, 1, RegValue::Val(2), 6, 7);
        assert!(check_swmr_regularity(&h).is_ok());
    }

    #[test]
    fn new_old_inversion_is_regular_but_not_atomic() {
        let mut h = History::new();
        let wr = h.invoke_write(0, 1, 0);
        h.respond(wr, None, 100);
        r(&mut h, 1, RegValue::Val(1), 10, 20);
        r(&mut h, 2, RegValue::Bottom, 30, 40);
        assert!(check_swmr_regularity(&h).is_ok());
        assert!(check_swmr_atomicity(&h).is_err());
    }

    #[test]
    fn missing_completed_write_is_not_regular() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        let rd = r(&mut h, 1, RegValue::Bottom, 2, 3);
        assert_eq!(
            check_swmr_regularity(&h),
            Err(RegularityViolation::StaleOrFutureValue {
                read: rd,
                returned_index: 0,
                last_preceding_index: 1
            })
        );
    }

    #[test]
    fn skipping_back_two_writes_is_not_regular() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        w(&mut h, 2, 2, 3);
        // Read concurrent with write(3) may return 2 or 3, but not 1.
        let wr3 = h.invoke_write(0, 3, 4);
        h.respond(wr3, None, 10);
        let rd = r(&mut h, 1, RegValue::Val(1), 5, 6);
        assert_eq!(
            check_swmr_regularity(&h),
            Err(RegularityViolation::StaleOrFutureValue {
                read: rd,
                returned_index: 1,
                last_preceding_index: 2
            })
        );
    }

    #[test]
    fn concurrent_write_value_is_regular() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        let wr2 = h.invoke_write(0, 2, 2);
        h.respond(wr2, None, 10);
        r(&mut h, 1, RegValue::Val(2), 3, 4);
        assert!(check_swmr_regularity(&h).is_ok());
    }

    #[test]
    fn future_value_is_not_regular() {
        let mut h = History::new();
        let rd = r(&mut h, 1, RegValue::Val(1), 0, 1);
        w(&mut h, 1, 5, 6);
        assert!(matches!(
            check_swmr_regularity(&h),
            Err(RegularityViolation::StaleOrFutureValue { read, .. }) if read == rd
        ));
    }

    #[test]
    fn unwritten_value_is_not_regular() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        let rd = r(&mut h, 1, RegValue::Val(42), 2, 3);
        assert_eq!(
            check_swmr_regularity(&h),
            Err(RegularityViolation::UnwrittenValue {
                read: rd,
                value: RegValue::Val(42)
            })
        );
    }

    #[test]
    fn atomic_implies_regular_on_random_histories() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..300 {
            let mut h = History::new();
            let n_writes: u64 = rng.gen_range(0..4);
            let mut t = 0u64;
            for v in 1..=n_writes {
                let inv = t;
                t += rng.gen_range(1..4);
                let id = h.invoke_write(0, v, inv);
                h.respond(id, None, t);
                t += 1;
            }
            for proc in 1..=rng.gen_range(1..4u32) {
                let inv = rng.gen_range(0..t + 5);
                let resp = inv + rng.gen_range(0..4);
                let ret = if n_writes == 0 || rng.gen_bool(0.3) {
                    RegValue::Bottom
                } else {
                    RegValue::Val(rng.gen_range(1..=n_writes))
                };
                let id = h.invoke_read(proc, inv);
                h.respond(id, Some(ret), resp);
            }
            if check_swmr_atomicity(&h).is_ok() {
                assert!(
                    check_swmr_regularity(&h).is_ok(),
                    "atomic history not regular:\n{}",
                    h.render()
                );
            }
        }
    }

    #[test]
    fn precondition_failures_reported() {
        let mut h = History::new();
        w(&mut h, 5, 0, 1);
        w(&mut h, 5, 2, 3);
        assert!(matches!(
            check_swmr_regularity(&h),
            Err(RegularityViolation::Precondition(_))
        ));
        let msg = format!("{}", check_swmr_regularity(&h).unwrap_err());
        assert!(msg.contains("precondition"));
    }
}
