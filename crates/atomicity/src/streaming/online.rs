//! The incremental SWMR checker: batch verdicts from an event stream,
//! with memory bounded by the frontier.
//!
//! [`StreamingChecker`] consumes [`HistoryEvent`]s in nondecreasing tick
//! order and maintains just enough state to emit, at any point, the exact
//! verdict code the batch checker would emit on the history seen so far:
//!
//! * the *frontier*: open writes, pending reads, and reads *parked* on a
//!   value that has not been written yet;
//! * a bounded *settled summary*: a staircase of undominated
//!   `(response, write-index)` pairs for new/old-inversion detection, a
//!   deque of recent write response ticks for the latest-preceding-write
//!   count, and (only while reads are parked) the resolved reads a parked
//!   read could still invert against.
//!
//! Everything behind the frontier is pruned, so peak resident *operation*
//! count is O(frontier), not O(history). The one intentionally unbounded
//! piece of state is the value→write-index map: any future read may return
//! any past value, so the map must cover all writes — it holds two words
//! per write, not operations.

#[allow(clippy::disallowed_types)]
use std::collections::HashMap; // fastreg-lint: allow(nondet-order): keyed lookups (value -> write index, value -> parked reads); min-reductions only, never order-dependent
use std::collections::{BTreeMap, VecDeque};

use crate::history::{History, HistoryEvent, OpKind, RegValue, Tick};
use crate::verdict::{Verdict, ViolationKind};

/// Which contract the checker enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// The paper's four-condition SWMR atomicity (§3.1).
    Atomic,
    /// Lamport regularity (§8): no condition linking different reads.
    Regular,
}

/// A write that has been invoked but not yet responded.
#[derive(Clone, Copy, Debug)]
struct OpenWrite {
    /// If a later write was invoked while this one was open, this write
    /// must respond at or before that tick (the batch checker's
    /// `a.resp <= b.inv` sequentiality rule) — or the writes are
    /// malformed.
    bound: Option<Tick>,
}

/// A completed read whose returned value has not been written yet.
#[derive(Clone, Copy, Debug)]
struct ParkedRead {
    id: usize,
    inv: Tick,
    resp: Tick,
}

/// A tick multiset with O(log n) insert/remove and O(log n) minimum,
/// used for the frontier thresholds (minimum pending-read invocation,
/// minimum parked-read invocation/response).
#[derive(Clone, Debug, Default)]
struct TickBag {
    counts: BTreeMap<Tick, usize>,
}

impl TickBag {
    fn add(&mut self, t: Tick) {
        *self.counts.entry(t).or_insert(0) += 1;
    }

    fn remove(&mut self, t: Tick) {
        match self.counts.entry(t) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                *e.get_mut() -= 1;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            std::collections::btree_map::Entry::Vacant(_) => {
                unreachable!("removing a tick that was never added")
            }
        }
    }

    fn min(&self) -> Option<Tick> {
        self.counts.keys().next().copied()
    }
}

/// An incremental SWMR atomicity / regularity checker.
///
/// Feed it the history's events in nondecreasing tick order (either live,
/// via [`History::drain_journal`](crate::history::History::drain_journal),
/// or by replaying a recorded history with [`replay_events`]); ask for the
/// verdict at any point with [`verdict`](StreamingChecker::verdict). The
/// verdict treats the events seen so far as the complete history and is
/// byte-identical in code to running the corresponding batch checker
/// ([`check_swmr_atomicity`](crate::swmr::check_swmr_atomicity) /
/// [`check_swmr_regularity`](crate::regularity::check_swmr_regularity)) on
/// it.
///
/// # Examples
///
/// ```
/// use fastreg_atomicity::history::{History, RegValue};
/// use fastreg_atomicity::streaming::online::{replay_events, StreamingChecker};
/// use fastreg_atomicity::verdict::Verdict;
///
/// let mut h = History::new();
/// let w = h.invoke_write(0, 1, 0);
/// h.respond(w, None, 2);
/// let r = h.invoke_read(1, 3);
/// h.respond(r, Some(RegValue::Val(1)), 4);
///
/// let mut c = StreamingChecker::new_atomic();
/// for e in replay_events(&h) {
///     c.on_event(&e);
/// }
/// assert_eq!(c.verdict(), Verdict::Clean);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingChecker {
    mode: Mode,
    /// Tick of the last event seen; events must not go backwards.
    last_tick: Tick,
    /// Total invocations seen (reads and writes).
    ops_seen: usize,

    // -- writer state ----------------------------------------------------
    writer_proc: Option<u32>,
    writes_invoked: usize,
    /// `id` of the most recently invoked write (bound target for the
    /// sequentiality check).
    last_write: Option<usize>,
    open_writes: BTreeMap<usize, OpenWrite>,
    /// value → 1-based write index, over *all* writes seen. Deliberately
    /// unpruned (see module docs).
    #[allow(clippy::disallowed_types)]
    // fastreg-lint: allow(nondet-order): pure keyed lookup (value -> write index), never iterated
    value_index: HashMap<u64, usize>,
    /// Response ticks of completed writes still needed by the
    /// latest-preceding-write count, oldest first; nondecreasing.
    write_resps: VecDeque<Tick>,
    /// Completed writes whose response ticks were pruned off the front of
    /// `write_resps` (they precede every read that can still resolve).
    write_resps_pruned: usize,

    // -- reader state ----------------------------------------------------
    /// Pending reads: id → invocation tick.
    pending_reads: BTreeMap<usize, Tick>,
    pending_invs: TickBag,
    /// Completed reads parked on a not-yet-written value, keyed by value.
    #[allow(clippy::disallowed_types)]
    // fastreg-lint: allow(nondet-order): keyed lookup at write-invocation time; the only iteration is a min-by-OpId reduction
    parked: HashMap<u64, Vec<ParkedRead>>,
    parked_count: usize,
    parked_invs: TickBag,
    parked_resps: TickBag,

    // -- condition-4 summary (atomic mode only) --------------------------
    /// Undominated `(response tick, write index)` pairs of resolved reads,
    /// ascending in both components.
    staircase: Vec<(Tick, usize)>,
    /// Maximum write index folded off the staircase front (entries that
    /// precede every read that can still resolve).
    base_max: Option<usize>,
    /// Resolved reads a still-parked read could yet invert against:
    /// `(invocation tick, write index)`, kept only while reads are parked.
    retained: Vec<(Tick, usize)>,

    // -- outcome ---------------------------------------------------------
    malformed: bool,
    duplicate: bool,
    unwritten: bool,
    missed: bool,
    future: bool,
    inversion: bool,
    /// Regular mode: the minimum-OpId bad read seen so far (batch
    /// regularity reports the first bad read in record order).
    first_bad: Option<(usize, ViolationKind)>,

    /// High-water mark of `resident_ops`.
    hwm: usize,
}

impl StreamingChecker {
    /// Creates a checker for the paper's SWMR *atomicity* conditions.
    pub fn new_atomic() -> Self {
        Self::new(Mode::Atomic)
    }

    /// Creates a checker for Lamport *regularity*.
    pub fn new_regular() -> Self {
        Self::new(Mode::Regular)
    }

    // The two HashMap constructions mirror the annotated field types.
    #[allow(clippy::disallowed_types)]
    fn new(mode: Mode) -> Self {
        StreamingChecker {
            mode,
            last_tick: 0,
            ops_seen: 0,
            writer_proc: None,
            writes_invoked: 0,
            last_write: None,
            open_writes: BTreeMap::new(),
            // fastreg-lint: allow(nondet-order): empty constructor for the field annotated above
            value_index: HashMap::new(),
            write_resps: VecDeque::new(),
            write_resps_pruned: 0,
            pending_reads: BTreeMap::new(),
            pending_invs: TickBag::default(),
            // fastreg-lint: allow(nondet-order): empty constructor for the field annotated above
            parked: HashMap::new(),
            parked_count: 0,
            parked_invs: TickBag::default(),
            parked_resps: TickBag::default(),
            staircase: Vec::new(),
            base_max: None,
            retained: Vec::new(),
            malformed: false,
            duplicate: false,
            unwritten: false,
            missed: false,
            future: false,
            inversion: false,
            first_bad: None,
            hwm: 0,
        }
    }

    /// Feeds one event. Events must arrive in nondecreasing tick order
    /// (the order both the history journal and [`replay_events`] produce).
    ///
    /// # Panics
    ///
    /// Panics if the event's tick precedes an already-seen event's, or on
    /// a response for an operation whose invocation was never fed.
    pub fn on_event(&mut self, event: &HistoryEvent) {
        let at = match event {
            HistoryEvent::Invoked { at, .. } | HistoryEvent::Responded { at, .. } => *at,
        };
        assert!(
            at >= self.last_tick,
            "event at tick {at} after tick {} — streaming checkers need tick order",
            self.last_tick
        );
        self.last_tick = at;
        match *event {
            HistoryEvent::Invoked { id, proc, kind, at } => match kind {
                OpKind::Write { value } => self.on_write_invoked(id.0, proc, value, at),
                OpKind::Read => self.on_read_invoked(id.0, at),
            },
            HistoryEvent::Responded { id, returned, at } => self.on_responded(id.0, returned, at),
        }
        self.prune();
        self.hwm = self.hwm.max(self.resident_ops());
    }

    /// Feeds a batch of events (see [`on_event`](StreamingChecker::on_event)).
    pub fn on_events(&mut self, events: &[HistoryEvent]) {
        for e in events {
            self.on_event(e);
        }
    }

    fn on_write_invoked(&mut self, id: usize, proc: u32, value: u64, at: Tick) {
        self.ops_seen += 1;
        if self.malformed {
            return;
        }
        match self.writer_proc {
            None => self.writer_proc = Some(proc),
            Some(p) if p != proc => {
                self.malformed = true;
                return;
            }
            Some(_) => {}
        }
        // Sequentiality: the previous write must respond at or before this
        // invocation. If it is still open, bound it (first bound wins: the
        // batch rule compares adjacent writes).
        if let Some(prev) = self.last_write {
            if let Some(open) = self.open_writes.get_mut(&prev) {
                if open.bound.is_none() {
                    open.bound = Some(at);
                }
            }
        }
        self.writes_invoked += 1;
        let k = self.writes_invoked;
        if self.value_index.insert(value, k).is_some() {
            self.duplicate = true;
        }
        self.open_writes.insert(id, OpenWrite { bound: None });
        self.last_write = Some(id);
        // This write's value may resolve parked reads — but not below the
        // duplicate flag (the value→index map is ambiguous from here on).
        if !self.duplicate {
            if let Some(parked) = self.parked.remove(&value) {
                for p in parked {
                    self.parked_count -= 1;
                    self.parked_invs.remove(p.inv);
                    self.parked_resps.remove(p.resp);
                    self.resolve_parked(p, k, at);
                }
                self.after_parked_change();
            }
        }
    }

    fn on_read_invoked(&mut self, id: usize, at: Tick) {
        self.ops_seen += 1;
        if self.malformed || self.duplicate {
            return;
        }
        self.pending_reads.insert(id, at);
        self.pending_invs.add(at);
    }

    fn on_responded(&mut self, id: usize, returned: Option<RegValue>, at: Tick) {
        if self.malformed {
            return;
        }
        if let Some(open) = self.open_writes.remove(&id) {
            if let Some(b) = open.bound {
                if at > b {
                    self.malformed = true;
                    return;
                }
            }
            self.write_resps.push_back(at);
            return;
        }
        let Some(inv) = self.pending_reads.remove(&id) else {
            assert!(
                self.duplicate,
                "response for op{id} whose invocation was never fed"
            );
            return;
        };
        self.pending_invs.remove(inv);
        if self.duplicate {
            return;
        }
        let k = match returned {
            // Batch atomicity flags a complete read with no recorded value
            // as condition (1); batch regularity reads it as ⊥.
            None => match self.mode {
                Mode::Atomic => {
                    self.unwritten = true;
                    return;
                }
                Mode::Regular => 0,
            },
            Some(RegValue::Bottom) => 0,
            Some(RegValue::Val(v)) => match self.value_index.get(&v) {
                Some(&k) => k,
                None => {
                    // Park: the value may be written later; if it never is,
                    // the verdict reports it as unwritten.
                    self.parked
                        .entry(v)
                        .or_default()
                        .push(ParkedRead { id, inv, resp: at });
                    self.parked_count += 1;
                    self.parked_invs.add(inv);
                    self.parked_resps.add(at);
                    return;
                }
            },
        };
        self.resolve_immediate(id, inv, at, k);
    }

    /// A read resolved at its own response: the write it returned was
    /// invoked at or before this tick, so the read can never precede it
    /// (no condition-3 check needed here).
    fn resolve_immediate(&mut self, id: usize, inv: Tick, resp: Tick, k: usize) {
        let lp = self.latest_preceding(inv);
        match self.mode {
            Mode::Atomic => {
                if k < lp {
                    self.missed = true;
                }
                if let Some(q) = self.stair_query(inv) {
                    if q > k {
                        self.inversion = true;
                    }
                }
                if k >= 1 {
                    self.stair_insert(resp, k);
                }
                self.retain_for_parked(inv, k);
            }
            Mode::Regular => {
                // Legal iff k is the last preceding write, or ⊥ with no
                // preceding write, or a concurrent write — for a read
                // resolved at its own response, that reduces to k >= lp.
                if k < lp {
                    self.note_bad(id, ViolationKind::NotRegular);
                }
            }
        }
    }

    /// A parked read resolved by the invocation (at `t_w`) of the write
    /// whose value it returned — necessarily the newest write, index `k`.
    /// Such a read can never miss a preceding write (`k` exceeds every
    /// write that precedes it), but it *precedes the write* — condition
    /// (3) — whenever it responded strictly before `t_w`.
    fn resolve_parked(&mut self, p: ParkedRead, k: usize, t_w: Tick) {
        match self.mode {
            Mode::Atomic => {
                if p.resp < t_w {
                    self.future = true;
                }
                if let Some(q) = self.stair_query(p.inv) {
                    if q > k {
                        self.inversion = true;
                    }
                }
                // Reads resolved after this one parked may be inversion
                // partners in the other direction: rd2 invoked after this
                // read's response, returning an older index.
                if self
                    .retained
                    .iter()
                    .any(|&(inv2, k2)| inv2 > p.resp && k2 < k)
                {
                    self.inversion = true;
                }
                self.stair_insert(p.resp, k);
                self.retain_for_parked(p.inv, k);
            }
            Mode::Regular => {
                if p.resp < t_w {
                    self.note_bad(p.id, ViolationKind::NotRegular);
                }
            }
        }
    }

    /// Number of writes whose response precedes `inv` — the batch
    /// checker's `latest_preceding` index (write responses are
    /// nondecreasing for well-formed histories, so count = max index).
    fn latest_preceding(&self, inv: Tick) -> usize {
        self.write_resps_pruned + self.write_resps.partition_point(|&r| r < inv)
    }

    fn note_bad(&mut self, id: usize, kind: ViolationKind) {
        match self.first_bad {
            Some((prev, _)) if prev <= id => {}
            _ => self.first_bad = Some((id, kind)),
        }
    }

    /// Records a resolved read for the forward inversion check while any
    /// read is parked (a parked read `p` only pairs with reads invoked
    /// strictly after `p`'s response).
    fn retain_for_parked(&mut self, inv: Tick, k: usize) {
        if let Some(min_resp) = self.parked_resps.min() {
            if inv > min_resp {
                self.retained.push((inv, k));
            }
        }
    }

    fn after_parked_change(&mut self) {
        match self.parked_resps.min() {
            None => self.retained.clear(),
            Some(min_resp) => self.retained.retain(|&(inv, _)| inv > min_resp),
        }
    }

    /// Maximum write index among resolved reads whose response precedes
    /// `inv` (condition-4 staircase query).
    fn stair_query(&self, inv: Tick) -> Option<usize> {
        let mut best = self.base_max;
        let idx = self.staircase.partition_point(|&(resp, _)| resp < inv);
        if idx > 0 {
            let k = self.staircase[idx - 1].1;
            best = Some(best.map_or(k, |b| b.max(k)));
        }
        best
    }

    fn stair_insert(&mut self, resp: Tick, k: usize) {
        if self.base_max.is_some_and(|b| b >= k) {
            return;
        }
        let idx = self.staircase.partition_point(|&(r, _)| r <= resp);
        if idx > 0 && self.staircase[idx - 1].1 >= k {
            return; // dominated: earlier response, same-or-newer index
        }
        let mut end = idx;
        while end < self.staircase.len() && self.staircase[end].1 <= k {
            end += 1; // those entries respond later and are not newer
        }
        self.staircase.splice(idx..end, [(resp, k)]);
    }

    /// Drops summary state that no read — present or future — can still
    /// observe. Future events carry ticks >= `last_tick`, pending reads
    /// resolve with their recorded invocation, parked reads with theirs:
    /// the minimum of those bounds every query tick still to come.
    fn prune(&mut self) {
        let pending_min = self.pending_invs.min().unwrap_or(Tick::MAX);
        let resp_threshold = self.last_tick.min(pending_min);
        while self
            .write_resps
            .front()
            .is_some_and(|&r| r < resp_threshold)
        {
            self.write_resps.pop_front();
            self.write_resps_pruned += 1;
        }
        if self.mode == Mode::Atomic {
            let stair_threshold = resp_threshold.min(self.parked_invs.min().unwrap_or(Tick::MAX));
            let idx = self
                .staircase
                .partition_point(|&(r, _)| r < stair_threshold);
            if idx > 0 {
                let k = self.staircase[idx - 1].1;
                self.base_max = Some(self.base_max.map_or(k, |b| b.max(k)));
                self.staircase.drain(..idx);
            }
        }
    }

    /// Operations (and per-operation summary entries) currently resident.
    /// This is what the frontier bounds; see the module docs for the one
    /// deliberate exception (the value→index map).
    pub fn resident_ops(&self) -> usize {
        self.open_writes.len()
            + self.pending_reads.len()
            + self.parked_count
            + self.staircase.len()
            + self.retained.len()
            + self.write_resps.len()
    }

    /// The highest value [`resident_ops`](StreamingChecker::resident_ops)
    /// has reached.
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Total invocations fed so far.
    pub fn ops_seen(&self) -> usize {
        self.ops_seen
    }

    /// The violation *proven so far*, if any — the early-exit signal.
    ///
    /// Unlike [`verdict`](StreamingChecker::verdict) this never counts a
    /// still-parked read (its value may yet be written), so a `Some` here
    /// is final: no further events can clean it. The kind may still be
    /// *upgraded* by later events (e.g. a duplicate overtaken by a
    /// malformed-writes discovery), so prefix kinds can differ from the
    /// full-history verdict.
    pub fn violation(&self) -> Option<ViolationKind> {
        if self.malformed {
            Some(ViolationKind::MalformedWrites)
        } else if self.duplicate {
            Some(ViolationKind::DuplicateWrittenValue)
        } else if self.unwritten {
            Some(ViolationKind::UnwrittenValue)
        } else if self.missed {
            Some(ViolationKind::MissedPrecedingWrite)
        } else if self.future {
            Some(ViolationKind::ReadFromFuture)
        } else if self.inversion {
            Some(ViolationKind::NewOldInversion)
        } else {
            match self.mode {
                Mode::Atomic => None,
                Mode::Regular => self.first_bad.map(|(_, kind)| kind),
            }
        }
    }

    /// The verdict for the events seen so far, treated as the complete
    /// history — byte-identical in code to the batch checker's.
    pub fn verdict(&self) -> Verdict {
        // An open write bounded by a later write's invocation can no
        // longer respond in time: the batch sequentiality check fails.
        let malformed =
            self.malformed || self.open_writes.values().any(|open| open.bound.is_some());
        if malformed {
            return Verdict::Violation(ViolationKind::MalformedWrites);
        }
        if self.duplicate {
            return Verdict::Violation(ViolationKind::DuplicateWrittenValue);
        }
        match self.mode {
            Mode::Atomic => {
                if self.unwritten || self.parked_count > 0 {
                    Verdict::Violation(ViolationKind::UnwrittenValue)
                } else if self.missed {
                    Verdict::Violation(ViolationKind::MissedPrecedingWrite)
                } else if self.future {
                    Verdict::Violation(ViolationKind::ReadFromFuture)
                } else if self.inversion {
                    Verdict::Violation(ViolationKind::NewOldInversion)
                } else {
                    Verdict::Clean
                }
            }
            Mode::Regular => {
                // Batch regularity reports the first bad read in record
                // order; a still-parked read is bad (unwritten value).
                let mut cand = self.first_bad;
                let parked_min = self.parked.values().flatten().map(|p| p.id).min();
                if let Some(id) = parked_min {
                    match cand {
                        Some((prev, _)) if prev <= id => {}
                        _ => cand = Some((id, ViolationKind::UnwrittenValue)),
                    }
                }
                match cand {
                    Some((_, kind)) => Verdict::Violation(kind),
                    None => Verdict::Clean,
                }
            }
        }
    }
}

/// Rebuilds the event stream of a recorded history, in nondecreasing tick
/// order (invocations before responses at equal ticks, record order within
/// each) — the order a live journal would have produced.
pub fn replay_events(history: &History) -> Vec<HistoryEvent> {
    let mut events: Vec<(Tick, u8, usize, HistoryEvent)> = Vec::with_capacity(history.len() * 2);
    for op in history.ops() {
        events.push((
            op.invoked_at,
            0,
            op.id.0,
            HistoryEvent::Invoked {
                id: op.id,
                proc: op.proc,
                kind: op.kind,
                at: op.invoked_at,
            },
        ));
        if let Some(resp) = op.responded_at {
            events.push((
                resp,
                1,
                op.id.0,
                HistoryEvent::Responded {
                    id: op.id,
                    returned: op.returned,
                    at: resp,
                },
            ));
        }
    }
    events.sort_by_key(|&(tick, rank, id, _)| (tick, rank, id));
    events.into_iter().map(|(_, _, _, e)| e).collect()
}

/// Checks SWMR atomicity by streaming a recorded history — same verdict
/// code as [`check_swmr_atomicity`](crate::swmr::check_swmr_atomicity),
/// O(frontier) resident operations.
pub fn stream_swmr_verdict(history: &History) -> Verdict {
    let mut c = StreamingChecker::new_atomic();
    c.on_events(&replay_events(history));
    c.verdict()
}

/// Checks SWMR regularity by streaming a recorded history — same verdict
/// code as [`check_swmr_regularity`](crate::regularity::check_swmr_regularity).
pub fn stream_regularity_verdict(history: &History) -> Verdict {
    let mut c = StreamingChecker::new_regular();
    c.on_events(&replay_events(history));
    c.verdict()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regularity::check_swmr_regularity;
    use crate::swmr::check_swmr_atomicity;

    fn batch_atomic(h: &History) -> Verdict {
        Verdict::from_atomicity(&check_swmr_atomicity(h))
    }

    fn batch_regular(h: &History) -> Verdict {
        Verdict::from_regularity(&check_swmr_regularity(h))
    }

    fn assert_matches_batch(h: &History) {
        assert_eq!(
            stream_swmr_verdict(h),
            batch_atomic(h),
            "atomic mismatch on:\n{}",
            h.render()
        );
        assert_eq!(
            stream_regularity_verdict(h),
            batch_regular(h),
            "regular mismatch on:\n{}",
            h.render()
        );
    }

    fn w(h: &mut History, v: u64, inv: Tick, resp: Tick) {
        let id = h.invoke_write(0, v, inv);
        h.respond(id, None, resp);
    }

    fn r(h: &mut History, proc: u32, ret: RegValue, inv: Tick, resp: Tick) {
        let id = h.invoke_read(proc, inv);
        h.respond(id, Some(ret), resp);
    }

    #[test]
    fn empty_history_is_clean() {
        assert_eq!(stream_swmr_verdict(&History::new()), Verdict::Clean);
        assert_eq!(stream_regularity_verdict(&History::new()), Verdict::Clean);
    }

    #[test]
    fn clean_sequential_history() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Val(1), 2, 3);
        w(&mut h, 2, 4, 5);
        r(&mut h, 2, RegValue::Val(2), 6, 7);
        assert_matches_batch(&h);
        assert_eq!(stream_swmr_verdict(&h), Verdict::Clean);
    }

    #[test]
    fn each_violation_kind_matches_batch() {
        // unwritten
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Val(42), 2, 3);
        assert_matches_batch(&h);
        assert_eq!(
            stream_swmr_verdict(&h),
            Verdict::Violation(ViolationKind::UnwrittenValue)
        );

        // missed preceding write
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Bottom, 2, 3);
        assert_matches_batch(&h);
        assert_eq!(
            stream_swmr_verdict(&h),
            Verdict::Violation(ViolationKind::MissedPrecedingWrite)
        );
        assert_eq!(
            stream_regularity_verdict(&h),
            Verdict::Violation(ViolationKind::NotRegular)
        );

        // read from the future
        let mut h = History::new();
        r(&mut h, 1, RegValue::Val(1), 0, 1);
        w(&mut h, 1, 5, 6);
        assert_matches_batch(&h);
        assert_eq!(
            stream_swmr_verdict(&h),
            Verdict::Violation(ViolationKind::ReadFromFuture)
        );

        // new/old inversion (the paper's prC counterexample shape)
        let mut h = History::new();
        h.invoke_write(0, 1, 0); // incomplete write(1)
        r(&mut h, 1, RegValue::Val(1), 2, 4);
        r(&mut h, 2, RegValue::Bottom, 5, 7);
        assert_matches_batch(&h);
        assert_eq!(
            stream_swmr_verdict(&h),
            Verdict::Violation(ViolationKind::NewOldInversion)
        );
        // ...which is regular: both reads overlap the open write.
        assert_eq!(stream_regularity_verdict(&h), Verdict::Clean);

        // duplicate written value
        let mut h = History::new();
        w(&mut h, 5, 0, 1);
        w(&mut h, 5, 2, 3);
        assert_matches_batch(&h);

        // malformed: overlapping writes
        let mut h = History::new();
        let a = h.invoke_write(0, 1, 0);
        h.invoke_write(0, 2, 5);
        h.respond(a, None, 10);
        assert_matches_batch(&h);
        assert_eq!(
            stream_swmr_verdict(&h),
            Verdict::Violation(ViolationKind::MalformedWrites)
        );

        // malformed: incomplete write that is not last
        let mut h = History::new();
        h.invoke_write(0, 1, 0);
        w(&mut h, 2, 5, 6);
        assert_matches_batch(&h);

        // malformed: multiple writer processes
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        let b = h.invoke_write(3, 2, 2);
        h.respond(b, None, 3);
        assert_matches_batch(&h);
    }

    #[test]
    fn parked_read_resolving_late_is_future_or_concurrent() {
        // Read returns v before write(v) is invoked: future.
        let mut h = History::new();
        r(&mut h, 1, RegValue::Val(9), 0, 2);
        w(&mut h, 9, 5, 6);
        assert_eq!(
            stream_swmr_verdict(&h),
            Verdict::Violation(ViolationKind::ReadFromFuture)
        );
        // Read still open when the write is invoked: concurrent, clean.
        let mut h = History::new();
        let rd = h.invoke_read(1, 0);
        let wr = h.invoke_write(0, 9, 3);
        h.respond(rd, Some(RegValue::Val(9)), 4);
        h.respond(wr, None, 5);
        assert_matches_batch(&h);
        assert_eq!(stream_swmr_verdict(&h), Verdict::Clean);
    }

    #[test]
    fn inversion_between_two_parked_reads() {
        // p1 returns the *newer* value and responds before p2 is invoked;
        // both park (their values are written only later). The pair is a
        // new/old inversion — but a parked read's write is by definition
        // invoked strictly after the read responded, so both reads are
        // also future reads, and the batch code priority puts future
        // ahead of inversion. Both checkers must agree on that code.
        let mut h = History::new();
        let p1 = h.invoke_read(1, 0);
        h.respond(p1, Some(RegValue::Val(2)), 1);
        let p2 = h.invoke_read(2, 2);
        h.respond(p2, Some(RegValue::Val(1)), 3);
        let w1 = h.invoke_write(0, 1, 5);
        h.respond(w1, None, 6);
        let w2 = h.invoke_write(0, 2, 7);
        h.respond(w2, None, 8);
        assert_matches_batch(&h);
        assert_eq!(
            stream_swmr_verdict(&h),
            Verdict::Violation(ViolationKind::ReadFromFuture)
        );
    }

    #[test]
    fn regular_reports_first_bad_read_in_record_order() {
        // Read op1 (not regular: stale ⊥) comes before read op2 (unwritten
        // value). Batch reports op1 → not-regular; streaming must agree
        // even though the unwritten read is discovered "harder".
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Bottom, 2, 3); // stale: write 1 precedes
        r(&mut h, 2, RegValue::Val(42), 4, 5); // unwritten
        assert_matches_batch(&h);
        assert_eq!(
            stream_regularity_verdict(&h),
            Verdict::Violation(ViolationKind::NotRegular)
        );

        // Swapped order: unwritten read first.
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Val(42), 2, 3); // unwritten
        r(&mut h, 2, RegValue::Bottom, 4, 5); // stale
        assert_matches_batch(&h);
        assert_eq!(
            stream_regularity_verdict(&h),
            Verdict::Violation(ViolationKind::UnwrittenValue)
        );
    }

    #[test]
    fn violation_is_none_while_only_parked() {
        let mut c = StreamingChecker::new_atomic();
        let mut h = History::new();
        let rd = h.invoke_read(1, 0);
        h.respond(rd, Some(RegValue::Val(7)), 1);
        c.on_events(&replay_events(&h));
        // Parked, not proven: the write may still arrive.
        assert_eq!(c.violation(), None);
        // But the verdict (history-complete reading) says unwritten.
        assert_eq!(
            c.verdict(),
            Verdict::Violation(ViolationKind::UnwrittenValue)
        );
        // The write arrives concurrently — clean after all.
        c.on_event(&HistoryEvent::Invoked {
            id: crate::history::OpId(1),
            proc: 0,
            kind: OpKind::Write { value: 7 },
            at: 1,
        });
        c.on_event(&HistoryEvent::Responded {
            id: crate::history::OpId(1),
            returned: None,
            at: 2,
        });
        assert_eq!(c.violation(), None);
        assert_eq!(c.verdict(), Verdict::Clean);
    }

    #[test]
    fn early_exit_fires_on_proven_violation() {
        let mut c = StreamingChecker::new_atomic();
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Bottom, 2, 3);
        c.on_events(&replay_events(&h));
        assert_eq!(c.violation(), Some(ViolationKind::MissedPrecedingWrite));
    }

    #[test]
    fn memory_stays_bounded_on_long_clean_history() {
        let mut c = StreamingChecker::new_atomic();
        let mut t = 0;
        for i in 0..10_000u64 {
            let w_id = crate::history::OpId((i * 3) as usize);
            c.on_event(&HistoryEvent::Invoked {
                id: w_id,
                proc: 0,
                kind: OpKind::Write { value: i + 1 },
                at: t,
            });
            c.on_event(&HistoryEvent::Responded {
                id: w_id,
                returned: None,
                at: t + 1,
            });
            for j in 0..2u64 {
                let r_id = crate::history::OpId((i * 3 + 1 + j) as usize);
                c.on_event(&HistoryEvent::Invoked {
                    id: r_id,
                    proc: 1 + j as u32,
                    kind: OpKind::Read,
                    at: t + 2 + j,
                });
                c.on_event(&HistoryEvent::Responded {
                    id: r_id,
                    returned: Some(RegValue::Val(i + 1)),
                    at: t + 3 + j,
                });
            }
            t += 6;
        }
        assert_eq!(c.verdict(), Verdict::Clean);
        assert_eq!(c.ops_seen(), 30_000);
        assert!(
            c.high_water_mark() <= 8,
            "resident ops grew with history: hwm = {}",
            c.high_water_mark()
        );
    }

    #[test]
    #[should_panic(expected = "tick order")]
    fn out_of_order_events_panic() {
        let mut c = StreamingChecker::new_atomic();
        c.on_event(&HistoryEvent::Invoked {
            id: crate::history::OpId(0),
            proc: 0,
            kind: OpKind::Read,
            at: 5,
        });
        c.on_event(&HistoryEvent::Invoked {
            id: crate::history::OpId(1),
            proc: 1,
            kind: OpKind::Read,
            at: 4,
        });
    }
}
