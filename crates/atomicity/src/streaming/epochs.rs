//! Intra-history parallelism: precedence-closed epochs checked across
//! worker threads.
//!
//! A *cut* is a point in the invocation-ordered operation stream where
//! every earlier operation has responded before every later operation was
//! invoked. Cutting at every such point partitions the history into
//! *epochs* with two properties the kernels exploit:
//!
//! * every operation in an earlier epoch *precedes* every operation in a
//!   later epoch (so cross-epoch condition checks reduce to per-epoch
//!   summaries — a prefix-max scan over `(min, max)` returned-index pairs
//!   detects every cross-epoch new/old inversion);
//! * the latest-preceding-write index of a read decomposes into the
//!   earlier epochs' write count plus a binary search within its own
//!   epoch.
//!
//! Epochs are distributed over
//! [`map_ordered`] workers in
//! contiguous chunks; because every kernel output is either a flag union
//! or a minimum over operation ids, the verdict is independent of the
//! worker count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fastreg_simnet::threaded::map_ordered;

use crate::history::{History, RegValue, Tick};
use crate::swmr::AtomicityViolation;
use crate::verdict::{Verdict, ViolationKind};

/// A write as the kernels see it: invocation tick, response tick if
/// complete.
#[derive(Clone, Copy, Debug)]
struct EpochWrite {
    inv: Tick,
    resp: Option<Tick>,
}

/// A resolved complete read: record id, interval, returned write index.
#[derive(Clone, Copy, Debug)]
struct EpochRead {
    id: usize,
    inv: Tick,
    resp: Tick,
    k: usize,
}

/// One precedence-closed epoch.
#[derive(Clone, Debug, Default)]
struct Epoch {
    /// Number of writes in earlier epochs (global index offset).
    write_off: usize,
    writes: Vec<EpochWrite>,
    reads: Vec<EpochRead>,
}

/// The sequential prefix of both parallel checkers: write validation,
/// value→index resolution, and the epoch partition.
struct Prepared {
    epochs: Vec<Epoch>,
    /// Reads whose value was never written (regularity collects them as
    /// candidates; atomicity short-circuits on them before this struct is
    /// built).
    unwritten_ids: Vec<usize>,
}

enum Prep {
    Ready(Prepared),
    /// The preconditions failed; the verdict is already decided.
    Early(Verdict),
}

/// `regular` switches the two batch checkers' differing read-resolution
/// rules: atomicity flags a complete read with no recorded value as
/// unwritten and short-circuits on any unwritten value; regularity reads
/// `None` as ⊥ and keeps scanning.
fn prepare(history: &History, regular: bool) -> Prep {
    let mut writes: Vec<&crate::history::Operation> = history.writes().collect();
    writes.sort_by_key(|w| w.invoked_at);

    if let Some(first) = writes.first() {
        if writes.iter().any(|w| w.proc != first.proc) {
            return Prep::Early(Verdict::Violation(ViolationKind::MalformedWrites));
        }
    }
    for pair in writes.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        match a.responded_at {
            Some(r) if r <= b.invoked_at => {}
            _ => return Prep::Early(Verdict::Violation(ViolationKind::MalformedWrites)),
        }
    }
    let index_of = match crate::swmr::index_writes(&writes) {
        Ok(map) => map,
        Err(AtomicityViolation::DuplicateWrittenValue { .. }) => {
            return Prep::Early(Verdict::Violation(ViolationKind::DuplicateWrittenValue))
        }
        Err(_) => unreachable!("index_writes only reports duplicates"),
    };

    let mut unwritten_ids = Vec::new();
    let mut resolved: Vec<EpochRead> = Vec::new();
    for read in history.reads().filter(|r| r.is_complete()) {
        let returned = match read.returned {
            Some(v) => v,
            None if regular => RegValue::Bottom,
            None => return Prep::Early(Verdict::Violation(ViolationKind::UnwrittenValue)),
        };
        let k = match returned {
            RegValue::Bottom => 0,
            RegValue::Val(v) => match index_of.get(&v) {
                Some(&k) => k,
                None if regular => {
                    unwritten_ids.push(read.id.0);
                    continue;
                }
                None => return Prep::Early(Verdict::Violation(ViolationKind::UnwrittenValue)),
            },
        };
        resolved.push(EpochRead {
            id: read.id.0,
            inv: read.invoked_at,
            resp: read.responded_at.expect("filtered to complete reads"),
            k,
        });
    }

    // Merge writes and resolved reads into one invocation-ordered stream
    // and cut wherever the running max response lands strictly before the
    // next invocation. Incomplete writes never respond, so everything
    // from one onwards is a single tail epoch.
    enum Item {
        Write(EpochWrite),
        Read(EpochRead),
    }
    let mut items: Vec<(Tick, Item)> = writes
        .iter()
        .map(|w| {
            (
                w.invoked_at,
                Item::Write(EpochWrite {
                    inv: w.invoked_at,
                    resp: w.responded_at,
                }),
            )
        })
        .chain(resolved.into_iter().map(|r| (r.inv, Item::Read(r))))
        .collect();
    items.sort_by_key(|&(inv, _)| inv);

    let mut epochs: Vec<Epoch> = Vec::new();
    let mut cur = Epoch::default();
    let mut writes_before = 0usize;
    let mut max_resp: Option<Tick> = Some(0);
    for (inv, item) in items {
        let closed = !cur.writes.is_empty() || !cur.reads.is_empty();
        if closed && max_resp.is_some_and(|m| m < inv) {
            writes_before += cur.writes.len();
            epochs.push(std::mem::take(&mut cur));
            cur.write_off = writes_before;
        }
        match item {
            Item::Write(w) => {
                max_resp = match (max_resp, w.resp) {
                    (Some(m), Some(r)) => Some(m.max(r)),
                    _ => None, // an op that never responds blocks all cuts
                };
                cur.writes.push(w);
            }
            Item::Read(r) => {
                max_resp = max_resp.map(|m| m.max(r.resp));
                cur.reads.push(r);
            }
        }
    }
    if !cur.writes.is_empty() || !cur.reads.is_empty() {
        epochs.push(cur);
    }
    Prep::Ready(Prepared {
        epochs,
        unwritten_ids,
    })
}

/// Splits `epochs` into at most `threads * 8` contiguous chunks so a
/// million tiny epochs do not become a million scheduler items.
fn chunk_epochs(epochs: Vec<Epoch>, threads: usize) -> Vec<Vec<Epoch>> {
    let n = epochs.len();
    if n == 0 {
        return Vec::new();
    }
    let n_chunks = n.min(threads.max(1) * 8);
    let per = n.div_ceil(n_chunks);
    let mut chunks = Vec::with_capacity(n_chunks);
    let mut it = epochs.into_iter();
    loop {
        let chunk: Vec<Epoch> = it.by_ref().take(per).collect();
        if chunk.is_empty() {
            return chunks;
        }
        chunks.push(chunk);
    }
}

/// Per-chunk output of the atomicity kernel.
#[derive(Clone, Debug, Default)]
struct AtomicChunk {
    missed: bool,
    future: bool,
    inversion: bool,
    /// Per epoch, `(min, max)` returned index over its reads.
    read_minmax: Vec<Option<(usize, usize)>>,
}

fn atomic_kernel(epochs: &[Epoch]) -> AtomicChunk {
    let mut out = AtomicChunk::default();
    for epoch in epochs {
        let off = epoch.write_off;
        let resps: Vec<Tick> = epoch.writes.iter().filter_map(|w| w.resp).collect();
        // Conditions (2) and (3).
        for r in &epoch.reads {
            let lp = off + resps.partition_point(|&t| t < r.inv);
            if r.k < lp {
                out.missed = true;
            }
            if r.k > off + epoch.writes.len() {
                // The write lives in a later epoch, which the read
                // precedes by the cut property.
                out.future = true;
            } else if r.k > off && r.resp < epoch.writes[r.k - 1 - off].inv {
                out.future = true;
            }
        }
        // Condition (4) within the epoch: sweep reads in invocation
        // order; a read inverts if some read that precedes it returned a
        // newer index.
        let mut reads = epoch.reads.clone();
        reads.sort_by_key(|r| r.inv);
        let mut heap: BinaryHeap<Reverse<(Tick, usize)>> = BinaryHeap::new();
        let mut settled_max: Option<usize> = None;
        for r in &reads {
            while let Some(&Reverse((resp, k))) = heap.peek() {
                if resp < r.inv {
                    heap.pop();
                    settled_max = Some(settled_max.map_or(k, |m| m.max(k)));
                } else {
                    break;
                }
            }
            if settled_max.is_some_and(|m| m > r.k) {
                out.inversion = true;
            }
            heap.push(Reverse((r.resp, r.k)));
        }
        out.read_minmax.push(epoch.reads.iter().map(|r| r.k).fold(
            None,
            |acc: Option<(usize, usize)>, k| {
                Some(acc.map_or((k, k), |(mn, mx)| (mn.min(k), mx.max(k))))
            },
        ));
    }
    out
}

/// Checks the paper's four SWMR atomicity conditions with epoch-level
/// parallelism across `threads` workers.
///
/// Returns the same stable verdict code as
/// [`check_swmr_atomicity`](crate::swmr::check_swmr_atomicity) for every
/// history and every `threads` value (the typed per-operation payload is
/// the batch checker's job).
///
/// # Examples
///
/// ```
/// use fastreg_atomicity::history::{History, RegValue};
/// use fastreg_atomicity::streaming::epochs::check_swmr_atomicity_parallel;
/// use fastreg_atomicity::verdict::Verdict;
///
/// let mut h = History::new();
/// let w = h.invoke_write(0, 1, 0);
/// h.respond(w, None, 2);
/// let r = h.invoke_read(1, 3);
/// h.respond(r, Some(RegValue::Val(1)), 4);
/// assert_eq!(check_swmr_atomicity_parallel(&h, 4), Verdict::Clean);
/// ```
pub fn check_swmr_atomicity_parallel(history: &History, threads: usize) -> Verdict {
    let prep = match prepare(history, false) {
        Prep::Early(v) => return v,
        Prep::Ready(p) => p,
    };
    let chunks = chunk_epochs(prep.epochs, threads);
    let results = map_ordered(chunks, threads, |_, chunk| atomic_kernel(&chunk));

    let (mut missed, mut future, mut inversion) = (false, false, false);
    let mut prefix_max: Option<usize> = None;
    for chunk in &results {
        missed |= chunk.missed;
        future |= chunk.future;
        inversion |= chunk.inversion;
        for &mm in &chunk.read_minmax {
            if let Some((mn, mx)) = mm {
                if prefix_max.is_some_and(|p| p > mn) {
                    inversion = true; // cross-epoch new/old inversion
                }
                prefix_max = Some(prefix_max.map_or(mx, |p| p.max(mx)));
            }
        }
    }
    if missed {
        Verdict::Violation(ViolationKind::MissedPrecedingWrite)
    } else if future {
        Verdict::Violation(ViolationKind::ReadFromFuture)
    } else if inversion {
        Verdict::Violation(ViolationKind::NewOldInversion)
    } else {
        Verdict::Clean
    }
}

/// Checks SWMR regularity with epoch-level parallelism across `threads`
/// workers. Same verdict code as
/// [`check_swmr_regularity`](crate::regularity::check_swmr_regularity)
/// for every history and every `threads` value.
pub fn check_swmr_regularity_parallel(history: &History, threads: usize) -> Verdict {
    let prep = match prepare(history, true) {
        Prep::Early(v) => return v,
        Prep::Ready(p) => p,
    };
    let unwritten_min = prep.unwritten_ids.iter().copied().min();
    let chunks = chunk_epochs(prep.epochs, threads);
    // Per chunk: the minimum id of a read violating the regularity rule
    // (neither last-preceding nor concurrent).
    let results = map_ordered(chunks, threads, |_, chunk: Vec<Epoch>| {
        let mut min_bad: Option<usize> = None;
        for epoch in &chunk {
            let off = epoch.write_off;
            let resps: Vec<Tick> = epoch.writes.iter().filter_map(|w| w.resp).collect();
            for r in &epoch.reads {
                let lp = off + resps.partition_point(|&t| t < r.inv);
                // Bad if the read missed a preceding write (k < lp),
                // returned a write of a later epoch (k past this
                // epoch's writes: the read precedes it outright), or
                // returned a same-epoch write invoked after it responded.
                let bad = r.k < lp
                    || r.k > off + epoch.writes.len()
                    || (r.k > lp && r.k > off && r.resp < epoch.writes[r.k - 1 - off].inv);
                if bad {
                    min_bad = Some(min_bad.map_or(r.id, |m| m.min(r.id)));
                }
            }
        }
        min_bad
    });
    let kernel_min = results.into_iter().flatten().min();
    // Batch regularity reports the first bad read in record order; merge
    // the two candidate families by operation id.
    match (unwritten_min, kernel_min) {
        (None, None) => Verdict::Clean,
        (Some(u), Some(k)) if k < u => Verdict::Violation(ViolationKind::NotRegular),
        (Some(_), _) => Verdict::Violation(ViolationKind::UnwrittenValue),
        (None, Some(_)) => Verdict::Violation(ViolationKind::NotRegular),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regularity::check_swmr_regularity;
    use crate::swmr::check_swmr_atomicity;

    fn assert_matches_batch(h: &History) {
        let batch = Verdict::from_atomicity(&check_swmr_atomicity(h));
        let batch_reg = Verdict::from_regularity(&check_swmr_regularity(h));
        for threads in [1, 2, 4] {
            assert_eq!(
                check_swmr_atomicity_parallel(h, threads),
                batch,
                "atomic mismatch at {threads} threads on:\n{}",
                h.render()
            );
            assert_eq!(
                check_swmr_regularity_parallel(h, threads),
                batch_reg,
                "regular mismatch at {threads} threads on:\n{}",
                h.render()
            );
        }
    }

    fn w(h: &mut History, v: u64, inv: Tick, resp: Tick) {
        let id = h.invoke_write(0, v, inv);
        h.respond(id, None, resp);
    }

    fn r(h: &mut History, proc: u32, ret: RegValue, inv: Tick, resp: Tick) {
        let id = h.invoke_read(proc, inv);
        h.respond(id, Some(ret), resp);
    }

    #[test]
    fn empty_and_clean_histories() {
        assert_matches_batch(&History::new());
        let mut h = History::new();
        for i in 1..=20 {
            w(&mut h, i, i * 10, i * 10 + 2);
            r(&mut h, 1, RegValue::Val(i), i * 10 + 3, i * 10 + 5);
        }
        assert_matches_batch(&h);
        assert_eq!(check_swmr_atomicity_parallel(&h, 4), Verdict::Clean);
    }

    #[test]
    fn epoch_partition_cuts_at_quiescence() {
        // Three obvious epochs; a cross-epoch inversion between the last
        // two: the epoch-2 read returns val_2, the epoch-3 read val_1.
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        w(&mut h, 2, 10, 11);
        r(&mut h, 1, RegValue::Val(2), 12, 13);
        r(&mut h, 2, RegValue::Val(1), 20, 21);
        assert_matches_batch(&h);
        // Batch reports the stale read as condition (2) first.
        assert_eq!(
            check_swmr_atomicity_parallel(&h, 2),
            Verdict::Violation(ViolationKind::MissedPrecedingWrite)
        );
    }

    #[test]
    fn cross_epoch_inversion_without_missed_write() {
        // Writer parks at val_2; two later epochs of reads regress from
        // val_3 to val_2 — wait, regression to the *last completed* write
        // is condition (2); a pure inversion needs a write concurrent
        // with both reads. Keep the write open across both epochs is
        // impossible (an open write blocks cuts), so cross-epoch
        // inversions always ride on completed writes and condition (2)
        // fires too. The scan still must detect the pair when the batch
        // checker classifies it first as missed — covered above — and
        // when reads in one epoch invert locally:
        let mut h = History::new();
        let wr = h.invoke_write(0, 1, 0);
        h.respond(wr, None, 100);
        r(&mut h, 1, RegValue::Val(1), 10, 20);
        r(&mut h, 2, RegValue::Bottom, 30, 40);
        assert_matches_batch(&h);
        assert_eq!(
            check_swmr_atomicity_parallel(&h, 3),
            Verdict::Violation(ViolationKind::NewOldInversion)
        );
    }

    #[test]
    fn future_read_across_epochs() {
        let mut h = History::new();
        r(&mut h, 1, RegValue::Val(1), 0, 1);
        w(&mut h, 1, 10, 11);
        assert_matches_batch(&h);
        assert_eq!(
            check_swmr_atomicity_parallel(&h, 2),
            Verdict::Violation(ViolationKind::ReadFromFuture)
        );
    }

    #[test]
    fn precondition_failures_short_circuit() {
        let mut h = History::new();
        w(&mut h, 5, 0, 1);
        w(&mut h, 5, 2, 3);
        assert_matches_batch(&h);
        let mut h = History::new();
        let a = h.invoke_write(0, 1, 0);
        h.invoke_write(0, 2, 5);
        h.respond(a, None, 10);
        assert_matches_batch(&h);
    }

    #[test]
    fn regular_merges_candidates_by_record_order() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Bottom, 2, 3); // not regular (earlier id)
        r(&mut h, 2, RegValue::Val(42), 4, 5); // unwritten (later id)
        assert_matches_batch(&h);
        assert_eq!(
            check_swmr_regularity_parallel(&h, 2),
            Verdict::Violation(ViolationKind::NotRegular)
        );
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        r(&mut h, 1, RegValue::Val(42), 2, 3); // unwritten (earlier id)
        r(&mut h, 2, RegValue::Bottom, 4, 5);
        assert_matches_batch(&h);
        assert_eq!(
            check_swmr_regularity_parallel(&h, 2),
            Verdict::Violation(ViolationKind::UnwrittenValue)
        );
    }

    #[test]
    fn pending_ops_land_in_the_tail_epoch() {
        let mut h = History::new();
        w(&mut h, 1, 0, 1);
        h.invoke_write(0, 2, 10); // never completes
        r(&mut h, 1, RegValue::Val(2), 12, 13);
        h.invoke_read(2, 14); // pending read is ignored
        assert_matches_batch(&h);
        assert_eq!(check_swmr_atomicity_parallel(&h, 2), Verdict::Clean);
    }
}
