//! Streaming linearizability: epoch-chained Wing–Gong search.
//!
//! The batch oracle ([`check_linearizable`](crate::linearizability))
//! explores one 64-bit mask over the whole history. The streaming form
//! exploits the same precedence-closed epochs as
//! [`epochs`](crate::streaming::epochs): once every buffered operation has
//! responded and a new invocation starts strictly after the latest
//! response, the buffered prefix is an epoch no later operation overlaps.
//! The checker then computes the *set of register values* the epoch can
//! end on (seeded from the values the previous epochs could end on),
//! drops the buffer, and carries only that value set forward — memory is
//! O(largest epoch), not O(history).
//!
//! On histories of at most 63 operations the verdict code is identical to
//! the batch oracle's. Longer histories whose epochs all stay at 63
//! operations or fewer get an *exact* clean/not-linearizable verdict where
//! the batch oracle could only report
//! [`CheckerLimit`](crate::verdict::ViolationKind::CheckerLimit); only an
//! individual epoch exceeding 63 operations makes the streaming checker
//! give up the same way.

use std::collections::{BTreeMap, BTreeSet};

use crate::history::{History, HistoryEvent, OpKind, RegValue, Tick};
use crate::verdict::{Verdict, ViolationKind};

/// A buffered operation, as reconstructed from events.
#[derive(Clone, Copy, Debug)]
struct LiteOp {
    kind: OpKind,
    inv: Tick,
    resp: Option<Tick>,
    returned: Option<RegValue>,
}

impl LiteOp {
    fn precedes(&self, other: &LiteOp) -> bool {
        match self.resp {
            Some(r) => r < other.inv,
            None => false,
        }
    }
}

/// An incremental linearizability checker for register histories (any
/// number of writers).
///
/// Feed events in nondecreasing tick order; read the verdict at any point
/// with [`verdict`](StreamingLinChecker::verdict) (the events so far are
/// treated as the complete history).
///
/// # Examples
///
/// ```
/// use fastreg_atomicity::history::{History, RegValue};
/// use fastreg_atomicity::streaming::lin::stream_lin_verdict;
/// use fastreg_atomicity::verdict::Verdict;
///
/// let mut h = History::new();
/// let w = h.invoke_write(0, 1, 0);
/// h.respond(w, None, 1);
/// let r = h.invoke_read(1, 2);
/// h.respond(r, Some(RegValue::Val(1)), 3);
/// assert_eq!(stream_lin_verdict(&h), Verdict::Clean);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingLinChecker {
    last_tick: Tick,
    ops_seen: usize,
    /// Ops of the still-open epoch, keyed by record id.
    buffer: BTreeMap<usize, LiteOp>,
    /// Buffered ops that have not responded yet.
    open: usize,
    /// Latest response among buffered ops.
    max_resp: Tick,
    /// Register values the settled epochs can end on.
    in_set: BTreeSet<RegValue>,
    /// Sticky outcome: the history is proven non-linearizable, or an
    /// epoch outgrew the 64-bit search mask.
    terminal: Option<ViolationKind>,
    hwm: usize,
}

impl Default for StreamingLinChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingLinChecker {
    /// Creates a checker; the register starts at `⊥`.
    pub fn new() -> Self {
        let mut in_set = BTreeSet::new();
        in_set.insert(RegValue::Bottom);
        StreamingLinChecker {
            last_tick: 0,
            ops_seen: 0,
            buffer: BTreeMap::new(),
            open: 0,
            max_resp: 0,
            in_set,
            terminal: None,
            hwm: 0,
        }
    }

    /// Feeds one event (same contract as
    /// [`StreamingChecker::on_event`](crate::streaming::online::StreamingChecker::on_event)).
    ///
    /// # Panics
    ///
    /// Panics on tick-order regressions and on responses for operations
    /// never fed.
    pub fn on_event(&mut self, event: &HistoryEvent) {
        let at = match event {
            HistoryEvent::Invoked { at, .. } | HistoryEvent::Responded { at, .. } => *at,
        };
        assert!(
            at >= self.last_tick,
            "event at tick {at} after tick {} — streaming checkers need tick order",
            self.last_tick
        );
        self.last_tick = at;
        match *event {
            HistoryEvent::Invoked { id, kind, at, .. } => {
                self.ops_seen += 1;
                if self.terminal.is_some() {
                    return;
                }
                // A quiescent point strictly before this invocation seals
                // the buffer as one epoch.
                if self.open == 0 && !self.buffer.is_empty() && self.max_resp < at {
                    self.close_epoch();
                }
                if self.terminal.is_some() {
                    return;
                }
                self.buffer.insert(
                    id.0,
                    LiteOp {
                        kind,
                        inv: at,
                        resp: None,
                        returned: None,
                    },
                );
                self.open += 1;
                if self.buffer.len() >= 64 {
                    // Same budget as the batch oracle's 64-bit mask.
                    self.terminal = Some(ViolationKind::CheckerLimit);
                    self.buffer.clear();
                    self.open = 0;
                }
                self.hwm = self.hwm.max(self.buffer.len());
            }
            HistoryEvent::Responded { id, returned, at } => {
                if self.terminal.is_some() {
                    return;
                }
                let op = self
                    .buffer
                    .get_mut(&id.0)
                    .unwrap_or_else(|| panic!("response for op{} never fed", id.0));
                op.resp = Some(at);
                op.returned = returned;
                self.open -= 1;
                self.max_resp = self.max_resp.max(at);
            }
        }
    }

    /// Feeds a batch of events.
    pub fn on_events(&mut self, events: &[HistoryEvent]) {
        for e in events {
            self.on_event(e);
        }
    }

    /// Seals the buffer (every op complete) as an epoch: the values the
    /// run can end on become the next epoch's seeds.
    fn close_epoch(&mut self) {
        let ops: Vec<LiteOp> = self.buffer.values().copied().collect();
        let out = epoch_out_values(&ops, &self.in_set);
        if out.is_empty() {
            self.terminal = Some(ViolationKind::NotLinearizable);
        } else {
            self.in_set = out;
        }
        self.buffer.clear();
        self.max_resp = 0;
    }

    /// Buffered operations currently resident (the open epoch).
    pub fn resident_ops(&self) -> usize {
        self.buffer.len()
    }

    /// The highest value [`resident_ops`](StreamingLinChecker::resident_ops)
    /// has reached.
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Total invocations fed so far.
    pub fn ops_seen(&self) -> usize {
        self.ops_seen
    }

    /// The outcome proven so far, if any (sticky): the early-exit signal.
    pub fn violation(&self) -> Option<ViolationKind> {
        self.terminal
    }

    /// The verdict for the events seen so far, treated as the complete
    /// history. Identical in code to
    /// [`Verdict::from_linearizable`](crate::verdict::Verdict::from_linearizable)
    /// of the batch oracle on histories the oracle can hold (at most 63
    /// operations).
    pub fn verdict(&self) -> Verdict {
        if let Some(kind) = self.terminal {
            return Verdict::Violation(kind);
        }
        if self.buffer.is_empty() {
            return Verdict::Clean;
        }
        // Final epoch: incomplete ops may be dropped (they never took
        // effect), so feasibility only requires covering the complete ones.
        let ops: Vec<LiteOp> = self.buffer.values().copied().collect();
        if final_epoch_feasible(&ops, &self.in_set) {
            Verdict::Clean
        } else {
            Verdict::Violation(ViolationKind::NotLinearizable)
        }
    }
}

/// All register values a fully-complete epoch can end on, starting from
/// any seed value. Empty means no linearization exists.
fn epoch_out_values(ops: &[LiteOp], seeds: &BTreeSet<RegValue>) -> BTreeSet<RegValue> {
    let full: u64 = if ops.len() >= 64 {
        unreachable!("epochs are capped at 63 ops before closing")
    } else {
        (1u64 << ops.len()) - 1
    };
    let mut out = BTreeSet::new();
    search(
        ops,
        seeds,
        full,
        |mask, value, out: &mut BTreeSet<RegValue>| {
            if mask == full {
                out.insert(value);
            }
            false // keep exploring: we want every reachable end value
        },
        &mut out,
    );
    out
}

/// Whether the (possibly incomplete) final epoch admits a linearization
/// covering every complete operation.
fn final_epoch_feasible(ops: &[LiteOp], seeds: &BTreeSet<RegValue>) -> bool {
    let complete_mask: u64 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.resp.is_some())
        .fold(0, |m, (i, _)| m | (1 << i));
    let mut found = false;
    search(
        ops,
        seeds,
        complete_mask,
        |mask, _, found: &mut bool| {
            if mask & complete_mask == complete_mask {
                *found = true;
                return true; // stop: feasibility proven
            }
            false
        },
        &mut found,
    );
    found
}

/// Shared DFS over `(linearized mask, register value)` states, seeded
/// from each value in `seeds`, memoized across seeds. `visit` returns
/// `true` to stop the search.
fn search<T>(
    ops: &[LiteOp],
    seeds: &BTreeSet<RegValue>,
    _target: u64,
    mut visit: impl FnMut(u64, RegValue, &mut T) -> bool,
    acc: &mut T,
) {
    let n = ops.len();
    let mut preds: Vec<u64> = vec![0; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && ops[i].precedes(&ops[j]) {
                preds[j] |= 1 << i;
            }
        }
    }
    let mut seen: BTreeSet<(u64, RegValue)> = BTreeSet::new();
    let mut stack: Vec<(u64, RegValue)> = seeds.iter().map(|&v| (0, v)).collect();
    while let Some((mask, value)) = stack.pop() {
        if !seen.insert((mask, value)) {
            continue;
        }
        if visit(mask, value, acc) {
            return;
        }
        for i in 0..n {
            let bit = 1u64 << i;
            if mask & bit != 0 || preds[i] & !mask != 0 {
                continue;
            }
            match ops[i].kind {
                OpKind::Write { value: v } => stack.push((mask | bit, RegValue::Val(v))),
                OpKind::Read => match ops[i].returned {
                    Some(ret) if ops[i].resp.is_some() => {
                        if ret == value {
                            stack.push((mask | bit, value));
                        }
                    }
                    _ => stack.push((mask | bit, value)),
                },
            }
        }
    }
}

/// Checks linearizability by streaming a recorded history — same verdict
/// code as lifting
/// [`check_linearizable`](crate::linearizability::check_linearizable) for
/// histories the batch oracle can hold, exact epoch-wise verdicts beyond
/// that.
pub fn stream_lin_verdict(history: &History) -> Verdict {
    let mut c = StreamingLinChecker::new();
    c.on_events(&crate::streaming::online::replay_events(history));
    c.verdict()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearizability::check_linearizable;

    fn batch(h: &History) -> Verdict {
        Verdict::from_linearizable(&check_linearizable(h))
    }

    fn w(h: &mut History, proc: u32, v: u64, inv: Tick, resp: Tick) {
        let id = h.invoke_write(proc, v, inv);
        h.respond(id, None, resp);
    }

    fn r(h: &mut History, proc: u32, ret: RegValue, inv: Tick, resp: Tick) {
        let id = h.invoke_read(proc, inv);
        h.respond(id, Some(ret), resp);
    }

    #[test]
    fn empty_is_clean() {
        assert_eq!(stream_lin_verdict(&History::new()), Verdict::Clean);
    }

    #[test]
    fn matches_batch_on_small_histories() {
        // Clean MWMR interleaving.
        let mut h = History::new();
        let w1 = h.invoke_write(0, 1, 0);
        let w2 = h.invoke_write(1, 2, 0);
        h.respond(w1, None, 10);
        h.respond(w2, None, 10);
        r(&mut h, 2, RegValue::Val(1), 11, 12);
        assert_eq!(stream_lin_verdict(&h), batch(&h));
        assert_eq!(stream_lin_verdict(&h), Verdict::Clean);

        // Stale read.
        let mut h = History::new();
        w(&mut h, 0, 1, 0, 1);
        r(&mut h, 1, RegValue::Bottom, 2, 3);
        assert_eq!(stream_lin_verdict(&h), batch(&h));
        assert_eq!(
            stream_lin_verdict(&h),
            Verdict::Violation(ViolationKind::NotLinearizable)
        );

        // New/old inversion on an incomplete write.
        let mut h = History::new();
        h.invoke_write(0, 1, 0);
        r(&mut h, 1, RegValue::Val(1), 2, 4);
        r(&mut h, 2, RegValue::Bottom, 5, 7);
        assert_eq!(stream_lin_verdict(&h), batch(&h));
    }

    #[test]
    fn value_set_chains_across_epochs() {
        // Epoch 1 ends ambiguously (read overlaps the write: register may
        // be ⊥ or 5 when it closes... the write is complete, so it ends
        // at 5 regardless of what the read saw). A later epoch that reads
        // ⊥ is not linearizable.
        let mut h = History::new();
        w(&mut h, 0, 5, 0, 3);
        r(&mut h, 1, RegValue::Bottom, 1, 2); // fine: concurrent with the write
        r(&mut h, 2, RegValue::Bottom, 10, 11); // stale: epoch 1 ended at 5
        assert_eq!(stream_lin_verdict(&h), batch(&h));
        assert_eq!(
            stream_lin_verdict(&h),
            Verdict::Violation(ViolationKind::NotLinearizable)
        );
    }

    #[test]
    fn ambiguous_epoch_end_keeps_both_values() {
        // The incomplete write may or may not have taken effect — but an
        // incomplete op keeps the epoch open, so this all stays one final
        // epoch and both outcomes are feasible.
        let mut h = History::new();
        h.invoke_write(0, 5, 0); // never completes
        r(&mut h, 1, RegValue::Val(5), 10, 11);
        assert_eq!(stream_lin_verdict(&h), batch(&h));
        assert_eq!(stream_lin_verdict(&h), Verdict::Clean);
    }

    #[test]
    fn long_multi_epoch_history_is_exact_past_the_batch_limit() {
        // 300 sequential ops: far beyond the batch 63-op budget, but each
        // epoch is tiny, so streaming stays exact.
        let mut h = History::new();
        let mut t = 0;
        for i in 1..=100u64 {
            w(&mut h, 0, i, t, t + 1);
            r(&mut h, 1, RegValue::Val(i), t + 2, t + 3);
            r(&mut h, 2, RegValue::Val(i), t + 4, t + 5);
            t += 6;
        }
        assert_eq!(
            batch(&h),
            Verdict::Violation(ViolationKind::CheckerLimit),
            "precondition: batch oracle must be over budget"
        );
        assert_eq!(stream_lin_verdict(&h), Verdict::Clean);

        // And a violation deep in the tail is still found.
        r(&mut h, 3, RegValue::Val(7), t, t + 1);
        assert_eq!(
            stream_lin_verdict(&h),
            Verdict::Violation(ViolationKind::NotLinearizable)
        );
    }

    #[test]
    fn memory_stays_bounded_across_epochs() {
        let mut c = StreamingLinChecker::new();
        let mut h = History::new();
        let mut t = 0;
        for i in 1..=200u64 {
            w(&mut h, 0, i, t, t + 1);
            r(&mut h, 1, RegValue::Val(i), t + 2, t + 3);
            t += 4;
        }
        c.on_events(&crate::streaming::online::replay_events(&h));
        assert_eq!(c.verdict(), Verdict::Clean);
        assert_eq!(c.ops_seen(), 400);
        assert!(
            c.high_water_mark() <= 4,
            "epoch buffer grew: hwm = {}",
            c.high_water_mark()
        );
    }

    #[test]
    fn oversized_epoch_hits_the_checker_limit() {
        // 64 mutually-overlapping ops: one epoch the mask cannot hold.
        let mut h = History::new();
        let ids: Vec<_> = (0..64).map(|i| h.invoke_write(i, i as u64, 0)).collect();
        for id in ids {
            h.respond(id, None, 100);
        }
        assert_eq!(stream_lin_verdict(&h), batch(&h));
        assert_eq!(
            stream_lin_verdict(&h),
            Verdict::Violation(ViolationKind::CheckerLimit)
        );
        // The terminal outcome is sticky and early-exitable.
        let mut c = StreamingLinChecker::new();
        c.on_events(&crate::streaming::online::replay_events(&h));
        assert_eq!(c.violation(), Some(ViolationKind::CheckerLimit));
    }
}
