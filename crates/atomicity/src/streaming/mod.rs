//! Streaming, parallel consistency checking.
//!
//! The batch checkers ([`swmr`](crate::swmr),
//! [`regularity`](crate::regularity),
//! [`linearizability`](crate::linearizability)) consume a complete
//! [`History`](crate::history::History); at millions of operations the
//! check dominates wall time and the history dominates memory. This module
//! provides the same verdicts in two cheaper shapes:
//!
//! * [`online`] — an incremental checker ([`StreamingChecker`]) that
//!   accepts [`HistoryEvent`](crate::history::HistoryEvent)s as they
//!   happen, keeps only the *frontier* (pending operations plus the
//!   undominated settled suffix) resident, and answers with the same
//!   stable [`Verdict`](crate::verdict::Verdict) codes as the batch path.
//!   [`StreamingLinChecker`] is the linearizability (W>1) counterpart.
//! * [`epochs`] — intra-history parallelism for complete histories: the
//!   operation stream is partitioned into precedence-closed epochs and the
//!   epochs are checked across
//!   [`map_ordered`](fastreg_simnet::threaded::map_ordered) workers, with
//!   verdicts independent of the worker count.
//!
//! Streaming vs batch: use the batch checkers when you need the *typed*
//! violation payload (operation ids, indices) for a failure report; use
//! streaming when the history is large, when you want the verdict to be
//! ready the moment the run ends, or when you want to abandon a doomed run
//! at the first proven violation. Both emit identical verdict codes.

pub mod epochs;
pub mod lin;
pub mod online;

pub use epochs::{check_swmr_atomicity_parallel, check_swmr_regularity_parallel};
pub use lin::{stream_lin_verdict, StreamingLinChecker};
pub use online::{replay_events, stream_regularity_verdict, stream_swmr_verdict, StreamingChecker};
