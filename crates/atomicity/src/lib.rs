//! # fastreg-atomicity
//!
//! Operation histories and mechanical consistency checkers for read/write
//! registers, built for the reproduction of *How Fast can a Distributed
//! Atomic Read be?* (PODC 2004).
//!
//! The paper defines atomicity for single-writer registers as four
//! conditions over a run's history (§3.1). This crate makes that definition
//! executable:
//!
//! * [`history`] — recording invocations and responses as clients execute.
//! * [`swmr`] — the paper's four-condition SWMR atomicity checker.
//! * [`linearizability`] — a general Wing–Gong linearizability checker for
//!   register histories (used for MWMR histories and as an independent
//!   cross-check of the SWMR checker).
//! * [`regularity`] — Lamport's regular-register condition (§8 contrasts
//!   fast regular registers with fast atomic ones).
//! * [`verdict`] — checker outcomes as stable serializable codes, the
//!   form schedule-exploration counterexample files store and compare.
//! * [`streaming`] — incremental (bounded-memory, online) and parallel
//!   (epoch-partitioned) forms of the same checks, emitting identical
//!   verdict codes.
//!
//! ## Example
//!
//! ```
//! use fastreg_atomicity::history::{History, RegValue};
//! use fastreg_atomicity::swmr::check_swmr_atomicity;
//!
//! let mut h = History::new();
//! // Writer writes 10, then a later read sees it: atomic.
//! let w = h.invoke_write(0, 10, 1);
//! h.respond(w, None, 5);
//! let r = h.invoke_read(1, 6);
//! h.respond(r, Some(RegValue::Val(10)), 9);
//! assert!(check_swmr_atomicity(&h).is_ok());
//!
//! // A later read regressing to ⊥ violates condition (4).
//! let r2 = h.invoke_read(2, 10);
//! h.respond(r2, Some(RegValue::Bottom), 12);
//! assert!(check_swmr_atomicity(&h).is_err());
//! ```

#![warn(missing_docs)]

pub mod history;
pub mod linearizability;
pub mod regularity;
pub mod streaming;
pub mod swmr;
pub mod verdict;

pub use history::{History, HistoryEvent, OpId, OpKind, Operation, RegValue, SharedHistory};
pub use linearizability::{check_linearizable, LinCheckError};
pub use regularity::check_swmr_regularity;
pub use streaming::{
    check_swmr_atomicity_parallel, check_swmr_regularity_parallel, replay_events,
    stream_lin_verdict, stream_regularity_verdict, stream_swmr_verdict, StreamingChecker,
    StreamingLinChecker,
};
pub use swmr::{check_swmr_atomicity, AtomicityViolation};
pub use verdict::{UnknownVerdict, Verdict, ViolationKind};
