//! General linearizability checking for register histories.
//!
//! A Wing–Gong style search with memoization (in the spirit of Lowe's
//! *Testing for linearizability*): the checker looks for a total order of
//! operations that (a) respects real-time precedence, (b) matches the
//! sequential specification of a read/write register, and (c) contains every
//! completed operation. Incomplete operations may be included (they took
//! effect) or left out (they never did) — exactly the completion semantics
//! of §3 of the paper.
//!
//! This checker is independent of the writer count, so it validates MWMR
//! histories (§7) and serves as an oracle to cross-check the specialized
//! SWMR checker on single-writer histories.

#[allow(clippy::disallowed_types)]
use std::collections::HashSet; // fastreg-lint: allow(nondet-order): DFS memo set, membership tests only, never iterated

use crate::history::{History, OpKind, Operation, RegValue};

/// Why a linearizability check could not be performed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinCheckError {
    /// Histories are checked with a 64-bit operation mask; longer histories
    /// must be split or sampled.
    TooManyOps {
        /// The number of operations found.
        found: usize,
    },
}

impl std::fmt::Display for LinCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinCheckError::TooManyOps { found } => {
                write!(f, "history has {found} ops; checker supports at most 63")
            }
        }
    }
}

impl std::error::Error for LinCheckError {}

/// Checks whether a register history is linearizable.
///
/// Returns `Ok(true)` if a valid linearization exists, `Ok(false)` if none
/// does.
///
/// # Errors
///
/// Returns [`LinCheckError::TooManyOps`] for histories longer than 63
/// operations (the search uses a 64-bit mask).
///
/// # Examples
///
/// ```
/// use fastreg_atomicity::history::{History, RegValue};
/// use fastreg_atomicity::linearizability::check_linearizable;
///
/// let mut h = History::new();
/// let w = h.invoke_write(0, 1, 0);
/// h.respond(w, None, 1);
/// let r = h.invoke_read(1, 2);
/// h.respond(r, Some(RegValue::Val(1)), 3);
/// assert_eq!(check_linearizable(&h), Ok(true));
/// ```
pub fn check_linearizable(history: &History) -> Result<bool, LinCheckError> {
    let ops: Vec<&Operation> = history.ops().iter().collect();
    if ops.len() >= 64 {
        return Err(LinCheckError::TooManyOps { found: ops.len() });
    }
    if ops.is_empty() {
        return Ok(true);
    }

    let n = ops.len();
    let complete_mask: u64 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_complete())
        .fold(0, |m, (i, _)| m | (1 << i));

    // Precedence: op i must be linearized before op j if i precedes j in
    // real time. We drive the search by candidate sets: an op can be
    // linearized next iff every op that precedes it is already linearized.
    let mut preds: Vec<u64> = vec![0; n];
    for i in 0..n {
        for j in 0..n {
            if i != j && ops[i].precedes(ops[j]) {
                preds[j] |= 1 << i;
            }
        }
    }

    // DFS over (linearized mask, current register value), memoized.
    #[allow(clippy::disallowed_types)]
    // fastreg-lint: allow(nondet-order): memo set for insert/contains only; the verdict never depends on its order
    let mut seen: HashSet<(u64, RegValue)> = HashSet::new();
    let mut stack: Vec<(u64, RegValue)> = vec![(0, RegValue::Bottom)];
    let full = complete_mask;

    while let Some((mask, value)) = stack.pop() {
        if mask & full == full {
            return Ok(true);
        }
        if !seen.insert((mask, value)) {
            continue;
        }
        for i in 0..n {
            let bit = 1u64 << i;
            if mask & bit != 0 {
                continue;
            }
            if preds[i] & !mask != 0 {
                continue; // an op preceding i is not yet linearized
            }
            match ops[i].kind {
                OpKind::Write { value: v } => {
                    stack.push((mask | bit, RegValue::Val(v)));
                }
                OpKind::Read => {
                    // An incomplete read can be linearized with any outcome
                    // (or skipped); a complete read must match the register.
                    match ops[i].returned {
                        Some(ret) if ops[i].is_complete() => {
                            if ret == value {
                                stack.push((mask | bit, value));
                            }
                        }
                        _ => {
                            stack.push((mask | bit, value));
                        }
                    }
                }
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpId;
    use crate::swmr::check_swmr_atomicity;

    fn w(h: &mut History, proc: u32, v: u64, inv: u64, resp: u64) -> OpId {
        let id = h.invoke_write(proc, v, inv);
        h.respond(id, None, resp);
        id
    }

    fn r(h: &mut History, proc: u32, ret: RegValue, inv: u64, resp: u64) -> OpId {
        let id = h.invoke_read(proc, inv);
        h.respond(id, Some(ret), resp);
        id
    }

    #[test]
    fn empty_is_linearizable() {
        assert_eq!(check_linearizable(&History::new()), Ok(true));
    }

    #[test]
    fn simple_write_read() {
        let mut h = History::new();
        w(&mut h, 0, 1, 0, 1);
        r(&mut h, 1, RegValue::Val(1), 2, 3);
        assert_eq!(check_linearizable(&h), Ok(true));
    }

    #[test]
    fn stale_read_is_not_linearizable() {
        let mut h = History::new();
        w(&mut h, 0, 1, 0, 1);
        r(&mut h, 1, RegValue::Bottom, 2, 3);
        assert_eq!(check_linearizable(&h), Ok(false));
    }

    #[test]
    fn new_old_inversion_is_not_linearizable() {
        let mut h = History::new();
        h.invoke_write(0, 1, 0); // incomplete write
        r(&mut h, 1, RegValue::Val(1), 2, 4);
        r(&mut h, 2, RegValue::Bottom, 5, 7);
        assert_eq!(check_linearizable(&h), Ok(false));
    }

    #[test]
    fn concurrent_read_either_value() {
        for ret in [RegValue::Bottom, RegValue::Val(9)] {
            let mut h = History::new();
            let wr = h.invoke_write(0, 9, 0);
            h.respond(wr, None, 10);
            r(&mut h, 1, ret, 3, 5);
            assert_eq!(check_linearizable(&h), Ok(true), "ret={ret}");
        }
    }

    #[test]
    fn incomplete_write_optional() {
        // Incomplete write never observed: fine.
        let mut h = History::new();
        h.invoke_write(0, 5, 0);
        r(&mut h, 1, RegValue::Bottom, 1, 2);
        assert_eq!(check_linearizable(&h), Ok(true));

        // Incomplete write observed then lost: not linearizable.
        let mut h2 = History::new();
        h2.invoke_write(0, 5, 0);
        r(&mut h2, 1, RegValue::Val(5), 1, 2);
        r(&mut h2, 2, RegValue::Bottom, 3, 4);
        assert_eq!(check_linearizable(&h2), Ok(false));
    }

    #[test]
    fn mwmr_interleaving_is_checked() {
        // Two writers write concurrently; readers see them in a consistent
        // order.
        let mut h = History::new();
        let w1 = h.invoke_write(0, 1, 0);
        let w2 = h.invoke_write(1, 2, 1);
        h.respond(w1, None, 10);
        h.respond(w2, None, 11);
        r(&mut h, 2, RegValue::Val(1), 12, 13);
        // A later read seeing 2 is fine: linearize w1 then w2? No — w2 would
        // then be after the read of 1... order w1, read(1)? read is at 12,
        // both writes ended by 11. Sequence: w2, w1, read(1), read(2)?
        // read(2) after read(1) would need value 2 after 1... Not possible;
        // 2 must come after 1's read but w2 precedes the read in real time?
        // w2 responds at 11 < 12, so w2 must linearize before read(1) —
        // contradiction. The only valid continuation is reading 1 forever.
        r(&mut h, 3, RegValue::Val(2), 14, 15);
        assert_eq!(check_linearizable(&h), Ok(false));
    }

    #[test]
    fn mwmr_concurrent_writes_order_freely() {
        let mut h = History::new();
        let w1 = h.invoke_write(0, 1, 0);
        let w2 = h.invoke_write(1, 2, 0);
        h.respond(w1, None, 10);
        h.respond(w2, None, 10);
        r(&mut h, 2, RegValue::Val(1), 11, 12);
        assert_eq!(check_linearizable(&h), Ok(true));
        let mut h2 = History::new();
        let w1 = h2.invoke_write(0, 1, 0);
        let w2 = h2.invoke_write(1, 2, 0);
        h2.respond(w1, None, 10);
        h2.respond(w2, None, 10);
        r(&mut h2, 2, RegValue::Val(2), 11, 12);
        assert_eq!(check_linearizable(&h2), Ok(true));
    }

    #[test]
    fn repeated_values_are_supported() {
        // The SWMR checker rejects duplicates; the linearizability checker
        // handles them.
        let mut h = History::new();
        w(&mut h, 0, 5, 0, 1);
        w(&mut h, 0, 5, 2, 3);
        r(&mut h, 1, RegValue::Val(5), 4, 5);
        assert_eq!(check_linearizable(&h), Ok(true));
    }

    #[test]
    fn too_many_ops_is_an_error() {
        let mut h = History::new();
        for i in 0..64 {
            w(&mut h, 0, i, i * 2, i * 2 + 1);
        }
        assert_eq!(
            check_linearizable(&h),
            Err(LinCheckError::TooManyOps { found: 64 })
        );
        assert!(!format!("{}", LinCheckError::TooManyOps { found: 64 }).is_empty());
    }

    #[test]
    fn incomplete_read_never_blocks() {
        let mut h = History::new();
        w(&mut h, 0, 1, 0, 1);
        h.invoke_read(1, 2); // pending
        r(&mut h, 2, RegValue::Val(1), 3, 4);
        assert_eq!(check_linearizable(&h), Ok(true));
    }

    /// On random single-writer histories, the SWMR checker and the
    /// linearizability oracle agree.
    #[test]
    fn agrees_with_swmr_checker_on_random_histories() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(2004);
        let mut checked = 0;
        let mut rejected = 0;
        for _ in 0..400 {
            let h = random_swmr_history(&mut rng);
            let lin = check_linearizable(&h).unwrap();
            match check_swmr_atomicity(&h) {
                Ok(()) => {
                    checked += 1;
                    assert!(lin, "swmr ok but not linearizable:\n{}", h.render());
                }
                Err(e) => {
                    use crate::swmr::AtomicityViolation as V;
                    match e {
                        V::DuplicateWrittenValue { .. } | V::MalformedWrites { .. } => {}
                        _ => {
                            rejected += 1;
                            assert!(!lin, "swmr violation {e} but linearizable:\n{}", h.render());
                        }
                    }
                }
            }
        }
        // The generator must exercise both outcomes for the test to mean
        // anything.
        assert!(checked > 20, "only {checked} accepted histories generated");
        assert!(
            rejected > 20,
            "only {rejected} rejected histories generated"
        );
    }

    /// Generates a small single-writer history with sequential writes of
    /// distinct values and random (possibly wrong) reads.
    fn random_swmr_history(rng: &mut impl rand::Rng) -> History {
        let mut h = History::new();
        let n_writes: u64 = rng.gen_range(0..4);
        let mut t = 0u64;
        for v in 1..=n_writes {
            let inv = t;
            t += rng.gen_range(1..4);
            let id = h.invoke_write(0, v, inv);
            if v < n_writes || rng.gen_bool(0.8) {
                h.respond(id, None, t);
                t += 1;
            }
        }
        let horizon = t + 6;
        for proc in 1..=rng.gen_range(1..4u32) {
            let inv = rng.gen_range(0..horizon);
            let resp = inv + rng.gen_range(0..4);
            let ret = if rng.gen_bool(0.3) || n_writes == 0 {
                RegValue::Bottom
            } else {
                RegValue::Val(rng.gen_range(1..=n_writes))
            };
            let id = h.invoke_read(proc, inv);
            h.respond(id, Some(ret), resp);
        }
        h
    }
}
