//! Operation histories.
//!
//! A history is the sequence of invocation and response events of read and
//! write operations, in run order (§3 of the paper). Clients record into a
//! [`History`] (usually through the thread-safe [`SharedHistory`] handle)
//! while a run executes; checkers consume it afterwards.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Ticks of the run clock (virtual or wall-clock microseconds).
pub type Tick = u64;

/// A register value: the initial `⊥` or a written value.
///
/// The paper fixes the initial value to a special `⊥` that is not a valid
/// input of any write; modelling it as a distinct variant keeps that
/// distinction type-level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegValue {
    /// The initial value `⊥`.
    Bottom,
    /// A written value.
    Val(u64),
}

impl fmt::Debug for RegValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegValue::Bottom => write!(f, "⊥"),
            RegValue::Val(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for RegValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for RegValue {
    fn from(v: u64) -> Self {
        RegValue::Val(v)
    }
}

/// What an operation does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `write(v)`.
    Write {
        /// The value being written.
        value: u64,
    },
    /// `read()`.
    Read,
}

/// Identifies an operation within one history.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub usize);

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// One read or write operation with its interval and outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Operation {
    /// The operation's id within the history.
    pub id: OpId,
    /// The invoking client (abstract process number; the recording layer
    /// decides the numbering).
    pub proc: u32,
    /// Read or write.
    pub kind: OpKind,
    /// When the operation was invoked.
    pub invoked_at: Tick,
    /// When it responded; `None` while pending / if it never completed.
    pub responded_at: Option<Tick>,
    /// For completed reads: the value returned.
    pub returned: Option<RegValue>,
}

impl Operation {
    /// Returns `true` if the operation completed.
    pub fn is_complete(&self) -> bool {
        self.responded_at.is_some()
    }

    /// Returns `true` if `self` precedes `other`: `self`'s response is
    /// before `other`'s invocation (§3.1).
    pub fn precedes(&self, other: &Operation) -> bool {
        match self.responded_at {
            Some(r) => r < other.invoked_at,
            None => false,
        }
    }

    /// Returns `true` if the operations are concurrent (neither precedes
    /// the other).
    pub fn concurrent_with(&self, other: &Operation) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }

    /// The written value, if this is a write.
    pub fn write_value(&self) -> Option<u64> {
        match self.kind {
            OpKind::Write { value } => Some(value),
            OpKind::Read => None,
        }
    }
}

/// One invocation or response event, as recorded into a [`History`].
///
/// Histories can journal their events (see
/// [`enable_journal`](History::enable_journal)) so a streaming checker can
/// consume the run *as it happens* instead of snapshotting the full
/// operation list at the end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistoryEvent {
    /// An operation was invoked.
    Invoked {
        /// The new operation's id.
        id: OpId,
        /// The invoking client.
        proc: u32,
        /// Read or write.
        kind: OpKind,
        /// Invocation tick.
        at: Tick,
    },
    /// An operation responded.
    Responded {
        /// The responding operation's id.
        id: OpId,
        /// For reads: the value returned.
        returned: Option<RegValue>,
        /// Response tick.
        at: Tick,
    },
}

/// A recorded history of operations, in invocation order.
///
/// Alongside the operation list, the history maintains O(1) completion
/// counters ([`completed_len`](History::completed_len),
/// [`has_pending`](History::has_pending)) so closed-loop drivers can poll
/// for client idleness millions of times per run without cloning or
/// rescanning the recorded operations.
///
/// See the crate-level example for typical use.
#[derive(Clone, Debug, Default)]
pub struct History {
    ops: Vec<Operation>,
    /// Number of completed operations (maintained by `respond`).
    completed: usize,
    /// Outstanding (invoked, not yet responded) operations per client.
    pending_by_proc: std::collections::BTreeMap<u32, u32>,
    /// Completed operations per client (maintained by `respond`).
    completed_by_proc: std::collections::BTreeMap<u32, u64>,
    /// When `Some`, every invoke/respond is also appended here, for
    /// streaming consumers. `None` (the default) costs nothing.
    journal: Option<Vec<HistoryEvent>>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Creates an empty history with room for `n_ops` operations, so
    /// large closed-loop runs record without reallocating mid-flight.
    pub fn with_capacity(n_ops: usize) -> Self {
        History {
            ops: Vec::with_capacity(n_ops),
            ..History::default()
        }
    }

    /// Reserves room for at least `additional` more operations.
    pub fn reserve(&mut self, additional: usize) {
        self.ops.reserve(additional);
    }

    /// Turns on event journalling: from now on every invoke/respond is
    /// also appended to an internal event list that
    /// [`drain_journal`](History::drain_journal) hands out. Idempotent.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Takes the journalled events accumulated since the last drain.
    /// Returns an empty vec when journalling was never enabled.
    pub fn drain_journal(&mut self) -> Vec<HistoryEvent> {
        match &mut self.journal {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Records the invocation of `write(value)` by `proc` at `at`.
    pub fn invoke_write(&mut self, proc: u32, value: u64, at: Tick) -> OpId {
        self.invoke(proc, OpKind::Write { value }, at)
    }

    /// Records the invocation of `read()` by `proc` at `at`.
    pub fn invoke_read(&mut self, proc: u32, at: Tick) -> OpId {
        self.invoke(proc, OpKind::Read, at)
    }

    /// Records an invocation.
    pub fn invoke(&mut self, proc: u32, kind: OpKind, at: Tick) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(Operation {
            id,
            proc,
            kind,
            invoked_at: at,
            responded_at: None,
            returned: None,
        });
        *self.pending_by_proc.entry(proc).or_insert(0) += 1;
        if let Some(j) = &mut self.journal {
            j.push(HistoryEvent::Invoked { id, proc, kind, at });
        }
        id
    }

    /// Records the response of `id` at `at`, with `returned` carrying the
    /// value for reads (`None` for writes).
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown, the operation already responded, or the
    /// response time precedes the invocation.
    pub fn respond(&mut self, id: OpId, returned: Option<RegValue>, at: Tick) {
        let op = &mut self.ops[id.0];
        assert!(op.responded_at.is_none(), "double response for {id:?}");
        assert!(
            at >= op.invoked_at,
            "response at {at} precedes invocation at {}",
            op.invoked_at
        );
        op.responded_at = Some(at);
        op.returned = returned;
        self.completed += 1;
        let proc = op.proc;
        if let Some(j) = &mut self.journal {
            j.push(HistoryEvent::Responded { id, returned, at });
        }
        *self.completed_by_proc.entry(proc).or_insert(0) += 1;
        if let std::collections::btree_map::Entry::Occupied(mut e) =
            self.pending_by_proc.entry(proc)
        {
            *e.get_mut() -= 1;
            if *e.get() == 0 {
                e.remove();
            }
        }
    }

    /// All operations, in invocation order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Looks up one operation.
    pub fn get(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(id.0)
    }

    /// Number of operations (complete and incomplete).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of completed operations, in O(1).
    pub fn completed_len(&self) -> usize {
        self.completed
    }

    /// Number of operations still pending (invoked, not responded), in
    /// O(1).
    pub fn pending_len(&self) -> usize {
        self.ops.len() - self.completed
    }

    /// Returns `true` if client `proc` has an operation outstanding, in
    /// O(log #clients) — the incremental form of scanning
    /// [`ops`](History::ops) for an incomplete entry.
    pub fn has_pending(&self, proc: u32) -> bool {
        self.pending_by_proc.contains_key(&proc)
    }

    /// Number of operations client `proc` has completed, in
    /// O(log #clients).
    ///
    /// Wall-clock runtimes lean on this: between injecting an invocation
    /// and the actor recording it there is a real-time window in which
    /// [`has_pending`](History::has_pending) still reads `false`, so a
    /// driver that must not double-invoke a client compares its own
    /// issued count against this monotone completion count instead.
    pub fn completed_by(&self, proc: u32) -> u64 {
        self.completed_by_proc.get(&proc).copied().unwrap_or(0)
    }

    /// Iterator over completed operations.
    pub fn complete_ops(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter().filter(|o| o.is_complete())
    }

    /// Iterator over all writes, in invocation order.
    pub fn writes(&self) -> impl Iterator<Item = &Operation> {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Write { .. }))
    }

    /// Iterator over all reads, in invocation order.
    pub fn reads(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter().filter(|o| matches!(o.kind, OpKind::Read))
    }

    /// Renders the history one operation per line (for failure reports).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for op in &self.ops {
            let interval = match op.responded_at {
                Some(r) => format!("[{}, {}]", op.invoked_at, r),
                None => format!("[{}, …)", op.invoked_at),
            };
            match op.kind {
                OpKind::Write { value } => {
                    let _ = writeln!(s, "{:?} p{} write({value}) {interval}", op.id, op.proc);
                }
                OpKind::Read => {
                    let ret = match op.returned {
                        Some(v) => format!("-> {v}"),
                        None => "-> ?".to_string(),
                    };
                    let _ = writeln!(s, "{:?} p{} read() {ret} {interval}", op.id, op.proc);
                }
            }
        }
        s
    }
}

/// A cloneable, thread-safe handle to a [`History`] under construction.
///
/// Client automata (which run on simulator steps or on OS threads) each hold
/// a clone and record through it.
#[derive(Clone, Debug, Default)]
pub struct SharedHistory {
    inner: Arc<Mutex<History>>,
}

impl SharedHistory {
    /// Creates an empty shared history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty shared history with room for `n_ops` operations.
    pub fn with_capacity(n_ops: usize) -> Self {
        SharedHistory {
            inner: Arc::new(Mutex::new(History::with_capacity(n_ops))),
        }
    }

    /// Reserves room for at least `additional` more operations.
    pub fn reserve(&self, additional: usize) {
        self.inner.lock().reserve(additional);
    }

    /// Turns on event journalling (see [`History::enable_journal`]).
    pub fn enable_journal(&self) {
        self.inner.lock().enable_journal();
    }

    /// Takes the journalled events accumulated since the last drain (see
    /// [`History::drain_journal`]).
    pub fn drain_journal(&self) -> Vec<HistoryEvent> {
        self.inner.lock().drain_journal()
    }

    /// Records a `write` invocation.
    pub fn invoke_write(&self, proc: u32, value: u64, at: Tick) -> OpId {
        self.inner.lock().invoke_write(proc, value, at)
    }

    /// Records a `read` invocation.
    pub fn invoke_read(&self, proc: u32, at: Tick) -> OpId {
        self.inner.lock().invoke_read(proc, at)
    }

    /// Records a response.
    pub fn respond(&self, id: OpId, returned: Option<RegValue>, at: Tick) {
        self.inner.lock().respond(id, returned, at)
    }

    /// Takes a snapshot of the history so far.
    pub fn snapshot(&self) -> History {
        self.inner.lock().clone()
    }

    /// Number of operations recorded so far (complete and pending).
    pub fn recorded_count(&self) -> usize {
        self.inner.lock().len()
    }

    /// Number of completed operations so far — O(1), used by closed-loop
    /// and wall-clock drivers to wait for completions without cloning the
    /// history.
    pub fn completed_count(&self) -> usize {
        self.inner.lock().completed_len()
    }

    /// Returns `true` while client `proc` has an operation outstanding —
    /// the driver-facing idleness query (no snapshot, no rescan).
    pub fn client_busy(&self, proc: u32) -> bool {
        self.inner.lock().has_pending(proc)
    }

    /// Number of operations client `proc` has completed — the monotone
    /// counter wall-clock drivers compare against their own issue counts
    /// (see [`History::completed_by`] for why `client_busy` alone is not
    /// enough there).
    pub fn completed_by(&self, proc: u32) -> u64 {
        self.inner.lock().completed_by(proc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_respond_roundtrip() {
        let mut h = History::new();
        let w = h.invoke_write(0, 5, 1);
        h.respond(w, None, 3);
        let r = h.invoke_read(1, 4);
        h.respond(r, Some(RegValue::Val(5)), 6);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(w).unwrap().write_value(), Some(5));
        assert_eq!(h.get(r).unwrap().returned, Some(RegValue::Val(5)));
        assert_eq!(h.complete_ops().count(), 2);
    }

    #[test]
    fn precedes_and_concurrency() {
        let mut h = History::new();
        let a = h.invoke_write(0, 1, 0);
        h.respond(a, None, 5);
        let b = h.invoke_read(1, 6);
        h.respond(b, Some(RegValue::Val(1)), 8);
        let c = h.invoke_read(2, 7);
        // c is pending.
        let (a, b, c) = (
            h.get(a).unwrap().clone(),
            h.get(b).unwrap().clone(),
            h.get(c).unwrap().clone(),
        );
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(b.concurrent_with(&c));
        // Pending op never precedes anything.
        assert!(!c.precedes(&b));
        assert!(a.precedes(&c));
    }

    #[test]
    fn adjacent_intervals_are_concurrent() {
        // Response at t and invocation at t are concurrent (precedes is
        // strict <).
        let mut h = History::new();
        let a = h.invoke_read(0, 0);
        h.respond(a, Some(RegValue::Bottom), 5);
        let b = h.invoke_read(1, 5);
        h.respond(b, Some(RegValue::Bottom), 6);
        let (a, b) = (h.get(a).unwrap().clone(), h.get(b).unwrap().clone());
        assert!(!a.precedes(&b));
        assert!(a.concurrent_with(&b));
    }

    #[test]
    #[should_panic(expected = "double response")]
    fn double_response_panics() {
        let mut h = History::new();
        let r = h.invoke_read(0, 0);
        h.respond(r, Some(RegValue::Bottom), 1);
        h.respond(r, Some(RegValue::Bottom), 2);
    }

    #[test]
    #[should_panic(expected = "precedes invocation")]
    fn response_before_invocation_panics() {
        let mut h = History::new();
        let r = h.invoke_read(0, 10);
        h.respond(r, Some(RegValue::Bottom), 5);
    }

    #[test]
    fn iterators_partition_ops() {
        let mut h = History::new();
        h.invoke_write(0, 1, 0);
        h.invoke_read(1, 1);
        h.invoke_write(0, 2, 2);
        assert_eq!(h.writes().count(), 2);
        assert_eq!(h.reads().count(), 1);
        assert_eq!(h.complete_ops().count(), 0);
    }

    #[test]
    fn incremental_counters_track_invoke_and_respond() {
        let mut h = History::new();
        assert_eq!(h.completed_len(), 0);
        assert_eq!(h.pending_len(), 0);
        assert!(!h.has_pending(0));
        let w = h.invoke_write(0, 1, 0);
        let r = h.invoke_read(1, 0);
        assert_eq!(h.pending_len(), 2);
        assert!(h.has_pending(0));
        assert!(h.has_pending(1));
        h.respond(w, None, 2);
        assert_eq!(h.completed_len(), 1);
        assert!(!h.has_pending(0));
        assert!(h.has_pending(1));
        h.respond(r, Some(RegValue::Val(1)), 3);
        assert_eq!(h.completed_len(), 2);
        assert_eq!(h.pending_len(), 0);
        // The counters agree with the scan they replace.
        assert_eq!(h.completed_len(), h.complete_ops().count());
    }

    #[test]
    fn shared_history_incremental_queries() {
        let sh = SharedHistory::new();
        let w = sh.invoke_write(3, 9, 1);
        assert!(sh.client_busy(3));
        assert!(!sh.client_busy(4));
        assert_eq!(sh.recorded_count(), 1);
        assert_eq!(sh.completed_count(), 0);
        sh.respond(w, None, 2);
        assert!(!sh.client_busy(3));
        assert_eq!(sh.completed_count(), 1);
    }

    #[test]
    fn shared_history_records_from_clones() {
        let sh = SharedHistory::new();
        let sh2 = sh.clone();
        let w = sh.invoke_write(0, 9, 1);
        sh2.respond(w, None, 2);
        let snap = sh.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap.get(w).unwrap().is_complete());
    }

    #[test]
    fn journal_captures_events_in_order_and_drains() {
        let mut h = History::new();
        // Events before enabling are not journalled.
        let w0 = h.invoke_write(0, 1, 0);
        h.respond(w0, None, 1);
        h.enable_journal();
        let w = h.invoke_write(0, 5, 2);
        let r = h.invoke_read(1, 3);
        h.respond(w, None, 4);
        let events = h.drain_journal();
        assert_eq!(
            events,
            vec![
                HistoryEvent::Invoked {
                    id: w,
                    proc: 0,
                    kind: OpKind::Write { value: 5 },
                    at: 2
                },
                HistoryEvent::Invoked {
                    id: r,
                    proc: 1,
                    kind: OpKind::Read,
                    at: 3
                },
                HistoryEvent::Responded {
                    id: w,
                    returned: None,
                    at: 4
                },
            ]
        );
        // Drained; the next drain only sees new events.
        h.respond(r, Some(RegValue::Val(5)), 5);
        let events = h.drain_journal();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], HistoryEvent::Responded { id, .. } if id == r));
    }

    #[test]
    fn drain_without_journal_is_empty() {
        let mut h = History::new();
        let w = h.invoke_write(0, 1, 0);
        h.respond(w, None, 1);
        assert_eq!(h.drain_journal(), vec![]);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let h = History::with_capacity(1024);
        assert!(h.is_empty());
        let sh = SharedHistory::with_capacity(1024);
        assert_eq!(sh.recorded_count(), 0);
        sh.reserve(16);
        sh.enable_journal();
        let w = sh.invoke_write(0, 1, 0);
        sh.respond(w, None, 1);
        assert_eq!(sh.drain_journal().len(), 2);
    }

    #[test]
    fn regvalue_display() {
        assert_eq!(format!("{}", RegValue::Bottom), "⊥");
        assert_eq!(format!("{}", RegValue::Val(3)), "3");
        assert_eq!(RegValue::from(3u64), RegValue::Val(3));
    }

    #[test]
    fn render_shows_pending_and_complete() {
        let mut h = History::new();
        let w = h.invoke_write(0, 5, 1);
        h.respond(w, None, 2);
        h.invoke_read(1, 3);
        let s = h.render();
        assert!(s.contains("write(5) [1, 2]"));
        assert!(s.contains("read() -> ? [3, …)"));
    }
}
