//! Checker verdicts as stable, serializable values.
//!
//! The checkers in this crate return rich typed errors
//! ([`AtomicityViolation`], [`RegularityViolation`]) whose payloads name
//! operation ids of one concrete history. Schedule exploration needs the
//! opposite trade-off: a verdict that is *stable across runs* — the same
//! violation found again (or replayed from a counterexample file weeks
//! later) must compare equal, even though the operation ids differ. A
//! [`Verdict`] is that compact form: either [`Verdict::Clean`] or a
//! [`ViolationKind`] with a stable kebab-case code that round-trips
//! through text.

use std::fmt;
use std::str::FromStr;

use crate::linearizability::LinCheckError;
use crate::regularity::RegularityViolation;
use crate::swmr::AtomicityViolation;

/// The *kind* of a consistency violation, with the per-history payload
/// erased.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Two writes wrote the same value; the SWMR checker cannot map
    /// returns to write indices.
    DuplicateWrittenValue,
    /// The single-sequential-writer assumption was broken.
    MalformedWrites,
    /// §3.1 condition (1): a read returned a never-written value.
    UnwrittenValue,
    /// §3.1 condition (2): a read missed a write completed before it.
    MissedPrecedingWrite,
    /// §3.1 condition (3): a read returned a value from the future.
    ReadFromFuture,
    /// §3.1 condition (4): a new/old inversion between two reads.
    NewOldInversion,
    /// The history is not regular (a read returned neither the last
    /// preceding write nor a concurrent one).
    NotRegular,
    /// The history admits no linearization (MWMR checker).
    NotLinearizable,
    /// The checker gave up (history too large for the oracle); not a
    /// violation of the history, but not a clean bill either.
    CheckerLimit,
}

impl ViolationKind {
    /// Every kind, in a stable order (for enumeration in tests/docs).
    pub const ALL: [ViolationKind; 9] = [
        ViolationKind::DuplicateWrittenValue,
        ViolationKind::MalformedWrites,
        ViolationKind::UnwrittenValue,
        ViolationKind::MissedPrecedingWrite,
        ViolationKind::ReadFromFuture,
        ViolationKind::NewOldInversion,
        ViolationKind::NotRegular,
        ViolationKind::NotLinearizable,
        ViolationKind::CheckerLimit,
    ];

    /// The stable kebab-case code (what counterexample files store).
    pub fn code(self) -> &'static str {
        match self {
            ViolationKind::DuplicateWrittenValue => "duplicate-written-value",
            ViolationKind::MalformedWrites => "malformed-writes",
            ViolationKind::UnwrittenValue => "unwritten-value",
            ViolationKind::MissedPrecedingWrite => "missed-preceding-write",
            ViolationKind::ReadFromFuture => "read-from-future",
            ViolationKind::NewOldInversion => "new-old-inversion",
            ViolationKind::NotRegular => "not-regular",
            ViolationKind::NotLinearizable => "not-linearizable",
            ViolationKind::CheckerLimit => "checker-limit",
        }
    }
}

impl From<&AtomicityViolation> for ViolationKind {
    fn from(v: &AtomicityViolation) -> Self {
        match v {
            AtomicityViolation::DuplicateWrittenValue { .. } => {
                ViolationKind::DuplicateWrittenValue
            }
            AtomicityViolation::MalformedWrites { .. } => ViolationKind::MalformedWrites,
            AtomicityViolation::UnwrittenValue { .. } => ViolationKind::UnwrittenValue,
            AtomicityViolation::MissedPrecedingWrite { .. } => ViolationKind::MissedPrecedingWrite,
            AtomicityViolation::ReadFromFuture { .. } => ViolationKind::ReadFromFuture,
            AtomicityViolation::NewOldInversion { .. } => ViolationKind::NewOldInversion,
        }
    }
}

impl From<&RegularityViolation> for ViolationKind {
    fn from(v: &RegularityViolation) -> Self {
        match v {
            RegularityViolation::Precondition(p) => p.into(),
            RegularityViolation::UnwrittenValue { .. } => ViolationKind::UnwrittenValue,
            RegularityViolation::StaleOrFutureValue { .. } => ViolationKind::NotRegular,
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Error parsing a [`Verdict`] or [`ViolationKind`] code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownVerdict {
    /// The string that failed to parse.
    pub given: String,
}

impl fmt::Display for UnknownVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown verdict '{}' (valid: clean, {})",
            self.given,
            ViolationKind::ALL
                .iter()
                .map(|k| k.code())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for UnknownVerdict {}

impl FromStr for ViolationKind {
    type Err = UnknownVerdict;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ViolationKind::ALL
            .into_iter()
            .find(|k| k.code() == s)
            .ok_or_else(|| UnknownVerdict { given: s.into() })
    }
}

/// The outcome of checking one history against one contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The history satisfies the checked contract.
    Clean,
    /// It does not; the stable kind of the first violation found.
    Violation(ViolationKind),
}

impl Verdict {
    /// Lifts an atomicity-checker result.
    pub fn from_atomicity(r: &Result<(), AtomicityViolation>) -> Verdict {
        match r {
            Ok(()) => Verdict::Clean,
            Err(v) => Verdict::Violation(v.into()),
        }
    }

    /// Lifts a regularity-checker result.
    pub fn from_regularity(r: &Result<(), RegularityViolation>) -> Verdict {
        match r {
            Ok(()) => Verdict::Clean,
            Err(v) => Verdict::Violation(v.into()),
        }
    }

    /// Lifts a linearizability-checker result; the checker running out of
    /// budget maps to [`ViolationKind::CheckerLimit`].
    pub fn from_linearizable(r: &Result<bool, LinCheckError>) -> Verdict {
        match r {
            Ok(true) => Verdict::Clean,
            Ok(false) => Verdict::Violation(ViolationKind::NotLinearizable),
            Err(_) => Verdict::Violation(ViolationKind::CheckerLimit),
        }
    }

    /// Returns `true` for [`Verdict::Clean`].
    pub fn is_clean(self) -> bool {
        matches!(self, Verdict::Clean)
    }

    /// Returns `true` for a violation the checker actually *proved* —
    /// i.e. any violation except [`ViolationKind::CheckerLimit`], which
    /// records that the oracle gave up, not that the history is wrong.
    /// Violation-hunting code classifies on this, never on
    /// `!is_clean()`: an oversized-but-correct history must not be
    /// reported as a protocol bug.
    pub fn is_proven_violation(self) -> bool {
        matches!(self, Verdict::Violation(k) if k != ViolationKind::CheckerLimit)
    }

    /// The stable code (`"clean"` or the violation kind's code).
    pub fn code(self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Violation(k) => k.code(),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for Verdict {
    type Err = UnknownVerdict;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "clean" {
            return Ok(Verdict::Clean);
        }
        s.parse::<ViolationKind>().map(Verdict::Violation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, RegValue};
    use crate::linearizability::check_linearizable;
    use crate::regularity::check_swmr_regularity;
    use crate::swmr::check_swmr_atomicity;

    #[test]
    fn codes_round_trip() {
        for k in ViolationKind::ALL {
            assert_eq!(k.code().parse::<ViolationKind>(), Ok(k));
            assert_eq!(k.code().parse::<Verdict>(), Ok(Verdict::Violation(k)));
        }
        assert_eq!("clean".parse::<Verdict>(), Ok(Verdict::Clean));
        assert!(Verdict::Clean.is_clean());
        assert_eq!(Verdict::Clean.to_string(), "clean");
    }

    #[test]
    fn unknown_codes_list_the_valid_ones() {
        let err = "atomic-ish".parse::<Verdict>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("atomic-ish"));
        assert!(msg.contains("clean"));
        assert!(msg.contains("new-old-inversion"));
    }

    /// A history with a new/old inversion: read 1 sees the write, a
    /// strictly later read regresses to ⊥.
    fn inverted_history() -> History {
        let mut h = History::new();
        let w = h.invoke_write(0, 7, 0);
        h.respond(w, None, 10);
        let r1 = h.invoke_read(1, 11);
        h.respond(r1, Some(RegValue::Val(7)), 12);
        let r2 = h.invoke_read(2, 13);
        h.respond(r2, Some(RegValue::Bottom), 14);
        h
    }

    #[test]
    fn lifts_preserve_the_checker_outcome() {
        let h = inverted_history();
        let atomic = Verdict::from_atomicity(&check_swmr_atomicity(&h));
        assert!(
            matches!(
                atomic,
                Verdict::Violation(
                    ViolationKind::MissedPrecedingWrite | ViolationKind::NewOldInversion
                )
            ),
            "got {atomic}"
        );
        // The write completed before the ⊥ read, so regularity fails too.
        let regular = Verdict::from_regularity(&check_swmr_regularity(&h));
        assert!(!regular.is_clean());
        let lin = Verdict::from_linearizable(&check_linearizable(&h));
        assert_eq!(lin, Verdict::Violation(ViolationKind::NotLinearizable));
    }

    #[test]
    fn clean_histories_lift_to_clean() {
        let mut h = History::new();
        let w = h.invoke_write(0, 1, 0);
        h.respond(w, None, 2);
        let r = h.invoke_read(1, 3);
        h.respond(r, Some(RegValue::Val(1)), 4);
        assert!(Verdict::from_atomicity(&check_swmr_atomicity(&h)).is_clean());
        assert!(Verdict::from_regularity(&check_swmr_regularity(&h)).is_clean());
        assert!(Verdict::from_linearizable(&check_linearizable(&h)).is_clean());
    }
}
