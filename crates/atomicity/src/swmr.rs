//! The paper's single-writer atomicity checker.
//!
//! §3.1 defines atomicity of a partial run for SWMR registers through four
//! conditions over the history, using the natural order of writes (the
//! writer is sequential, so writes are totally ordered by invocation and
//! `val_k` denotes the value of the k-th write, with `val_0 = ⊥`):
//!
//! 1. if a read returns `x` then there is `k` such that `val_k = x`;
//! 2. if a read `rd` is complete and succeeds some write `wr_k` (`k ≥ 1`),
//!    then `rd` returns `val_l` with `l ≥ k`;
//! 3. if a read `rd` returns `val_k` (`k ≥ 1`), then `wr_k` precedes `rd`
//!    or is concurrent with `rd`;
//! 4. if some read `rd1` returns `val_k` (`k ≥ 0`) and a read `rd2` that
//!    succeeds `rd1` returns `val_l`, then `l ≥ k`.
//!
//! The checker requires written values to be pairwise distinct so that the
//! mapping from a returned value to its write index `k` is unambiguous (the
//! workloads in this repository always write distinct values; for histories
//! with repeated values use the [`linearizability`](crate::linearizability)
//! checker instead).

#[allow(clippy::disallowed_types)]
use std::collections::HashMap; // fastreg-lint: allow(nondet-order): pure keyed lookup (value -> write index), never iterated
use std::fmt;

use crate::history::{History, OpId, OpKind, Operation, RegValue};

/// Why a history is not SWMR-atomic (or not checkable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtomicityViolation {
    /// Two writes wrote the same value; the value→index map is ambiguous.
    DuplicateWrittenValue {
        /// The repeated value.
        value: u64,
    },
    /// The "single sequential writer" assumption is broken: two writes
    /// overlap or multiple procs wrote.
    MalformedWrites {
        /// Human-readable description.
        detail: String,
    },
    /// Condition (1): a read returned a value that was never written.
    UnwrittenValue {
        /// The offending read.
        read: OpId,
        /// The value it returned.
        value: RegValue,
    },
    /// Condition (2): a read missed a write that completed before it.
    MissedPrecedingWrite {
        /// The offending read.
        read: OpId,
        /// Index of the latest write preceding the read.
        preceding_write_index: usize,
        /// Index of the write whose value was returned.
        returned_index: usize,
    },
    /// Condition (3): a read returned a value from the future (the write
    /// began only after the read completed).
    ReadFromFuture {
        /// The offending read.
        read: OpId,
        /// The write whose value was returned.
        write: OpId,
    },
    /// Condition (4): a later read returned an older value than an earlier
    /// read (new/old inversion).
    NewOldInversion {
        /// The earlier read.
        first_read: OpId,
        /// Write index it returned.
        first_index: usize,
        /// The later read.
        second_read: OpId,
        /// Write index it returned.
        second_index: usize,
    },
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicityViolation::DuplicateWrittenValue { value } => {
                write!(
                    f,
                    "value {value} written more than once; history not checkable"
                )
            }
            AtomicityViolation::MalformedWrites { detail } => {
                write!(f, "writes are not single-writer sequential: {detail}")
            }
            AtomicityViolation::UnwrittenValue { read, value } => {
                write!(
                    f,
                    "condition 1 violated: {read:?} returned unwritten value {value}"
                )
            }
            AtomicityViolation::MissedPrecedingWrite {
                read,
                preceding_write_index,
                returned_index,
            } => write!(
                f,
                "condition 2 violated: {read:?} returned val_{returned_index} but write \
                 {preceding_write_index} already completed before it"
            ),
            AtomicityViolation::ReadFromFuture { read, write } => {
                write!(f, "condition 3 violated: {read:?} returned the value of {write:?} which started after the read ended")
            }
            AtomicityViolation::NewOldInversion {
                first_read,
                first_index,
                second_read,
                second_index,
            } => write!(
                f,
                "condition 4 violated: {first_read:?} returned val_{first_index} but later \
                 {second_read:?} returned older val_{second_index}"
            ),
        }
    }
}

impl std::error::Error for AtomicityViolation {}

/// Checks the four SWMR atomicity conditions of §3.1.
///
/// Incomplete operations are allowed anywhere (the definition quantifies
/// over completed reads; incomplete writes still define `val_k`).
///
/// # Errors
///
/// Returns the first violation found, with the offending operation ids.
/// Returns `DuplicateWrittenValue` / `MalformedWrites` if the history does
/// not satisfy the checker's preconditions.
///
/// # Examples
///
/// ```
/// use fastreg_atomicity::history::{History, RegValue};
/// use fastreg_atomicity::swmr::check_swmr_atomicity;
///
/// let mut h = History::new();
/// let w = h.invoke_write(0, 1, 0);
/// h.respond(w, None, 2);
/// let r = h.invoke_read(1, 3);
/// h.respond(r, Some(RegValue::Val(1)), 4);
/// assert!(check_swmr_atomicity(&h).is_ok());
/// ```
pub fn check_swmr_atomicity(history: &History) -> Result<(), AtomicityViolation> {
    let writes = collect_writes(history)?;
    let index_of = index_writes(&writes)?;

    // Completed reads, with their resolved write index.
    let mut resolved: Vec<(&Operation, usize)> = Vec::new();
    for read in history.reads().filter(|r| r.is_complete()) {
        let returned = match read.returned {
            Some(v) => v,
            // A complete read with no recorded value is a recording bug;
            // flag it as condition (1).
            None => {
                return Err(AtomicityViolation::UnwrittenValue {
                    read: read.id,
                    value: RegValue::Bottom,
                })
            }
        };
        let k = match returned {
            RegValue::Bottom => 0,
            RegValue::Val(v) => match index_of.get(&v) {
                Some(&k) => k,
                None => {
                    return Err(AtomicityViolation::UnwrittenValue {
                        read: read.id,
                        value: returned,
                    })
                }
            },
        };
        resolved.push((read, k));
    }

    // Condition (2): read succeeds wr_k (complete) => returns val_l, l >= k.
    for &(read, l) in &resolved {
        let latest_preceding = writes
            .iter()
            .enumerate()
            .filter(|(_, w)| w.precedes(read))
            .map(|(i, _)| i + 1) // write indices are 1-based
            .max()
            .unwrap_or(0);
        if l < latest_preceding {
            return Err(AtomicityViolation::MissedPrecedingWrite {
                read: read.id,
                preceding_write_index: latest_preceding,
                returned_index: l,
            });
        }
    }

    // Condition (3): read returns val_k (k >= 1) => wr_k precedes or is
    // concurrent with the read (i.e. the read does not precede wr_k).
    for &(read, k) in &resolved {
        if k >= 1 {
            let wr_k = writes[k - 1];
            if read.precedes(wr_k) {
                return Err(AtomicityViolation::ReadFromFuture {
                    read: read.id,
                    write: wr_k.id,
                });
            }
        }
    }

    // Condition (4): rd2 succeeds rd1 => index(rd2) >= index(rd1).
    for &(rd1, k1) in &resolved {
        for &(rd2, k2) in &resolved {
            if rd1.precedes(rd2) && k2 < k1 {
                return Err(AtomicityViolation::NewOldInversion {
                    first_read: rd1.id,
                    first_index: k1,
                    second_read: rd2.id,
                    second_index: k2,
                });
            }
        }
    }

    Ok(())
}

/// Collects writes in invocation order and validates single-writer
/// sequentiality.
fn collect_writes(history: &History) -> Result<Vec<&Operation>, AtomicityViolation> {
    let mut writes: Vec<&Operation> = history.writes().collect();
    writes.sort_by_key(|w| w.invoked_at);

    if let Some(first) = writes.first() {
        if writes.iter().any(|w| w.proc != first.proc) {
            return Err(AtomicityViolation::MalformedWrites {
                detail: "multiple writer processes".to_string(),
            });
        }
    }
    for pair in writes.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // The writer is sequential: the earlier write must respond before
        // the later one is invoked — unless the earlier one never completes,
        // in which case it must be the last write. Ties (`r ==
        // b.invoked_at`) are allowed: the recorder guarantees call order,
        // and clock ticks are coarser than steps.
        match a.responded_at {
            Some(r) if r <= b.invoked_at => {}
            _ => {
                return Err(AtomicityViolation::MalformedWrites {
                    detail: format!("{:?} and {:?} overlap", a.id, b.id),
                });
            }
        }
    }
    Ok(writes)
}

/// Maps each written value to its 1-based write index.
#[allow(clippy::disallowed_types)]
pub(crate) fn index_writes(
    writes: &[&Operation],
    // fastreg-lint: allow(nondet-order): O(1) keyed lookup on the checker hot path; only get/insert, never iterated
) -> Result<HashMap<u64, usize>, AtomicityViolation> {
    // fastreg-lint: allow(nondet-order): same map as the signature above
    let mut index_of = HashMap::new();
    for (i, w) in writes.iter().enumerate() {
        let value = match w.kind {
            OpKind::Write { value } => value,
            OpKind::Read => unreachable!("collect_writes filters reads"),
        };
        if index_of.insert(value, i + 1).is_some() {
            return Err(AtomicityViolation::DuplicateWrittenValue { value });
        }
    }
    Ok(index_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_write(h: &mut History, value: u64, inv: u64, resp: u64) {
        let w = h.invoke_write(0, value, inv);
        h.respond(w, None, resp);
    }

    fn complete_read(h: &mut History, proc: u32, ret: RegValue, inv: u64, resp: u64) -> OpId {
        let r = h.invoke_read(proc, inv);
        h.respond(r, Some(ret), resp);
        r
    }

    #[test]
    fn empty_history_is_atomic() {
        assert!(check_swmr_atomicity(&History::new()).is_ok());
    }

    #[test]
    fn reads_of_bottom_before_any_write_are_atomic() {
        let mut h = History::new();
        complete_read(&mut h, 1, RegValue::Bottom, 0, 1);
        complete_read(&mut h, 2, RegValue::Bottom, 2, 3);
        assert!(check_swmr_atomicity(&h).is_ok());
    }

    #[test]
    fn sequential_write_then_read_is_atomic() {
        let mut h = History::new();
        complete_write(&mut h, 10, 0, 2);
        complete_read(&mut h, 1, RegValue::Val(10), 3, 5);
        assert!(check_swmr_atomicity(&h).is_ok());
    }

    #[test]
    fn condition1_unwritten_value() {
        let mut h = History::new();
        complete_write(&mut h, 10, 0, 2);
        let r = complete_read(&mut h, 1, RegValue::Val(99), 3, 5);
        assert_eq!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::UnwrittenValue {
                read: r,
                value: RegValue::Val(99)
            })
        );
    }

    #[test]
    fn condition2_missed_completed_write() {
        let mut h = History::new();
        complete_write(&mut h, 10, 0, 2);
        let r = complete_read(&mut h, 1, RegValue::Bottom, 3, 5);
        assert_eq!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::MissedPrecedingWrite {
                read: r,
                preceding_write_index: 1,
                returned_index: 0
            })
        );
    }

    #[test]
    fn concurrent_read_may_return_old_or_new() {
        // Write [0,10]; read [2,3] inside it may return ⊥ or 10.
        for ret in [RegValue::Bottom, RegValue::Val(10)] {
            let mut h = History::new();
            let w = h.invoke_write(0, 10, 0);
            h.respond(w, None, 10);
            complete_read(&mut h, 1, ret, 2, 3);
            assert!(check_swmr_atomicity(&h).is_ok(), "ret={ret}");
        }
    }

    #[test]
    fn condition3_read_from_future() {
        let mut h = History::new();
        let r = complete_read(&mut h, 1, RegValue::Val(10), 0, 1);
        complete_write(&mut h, 10, 5, 6);
        assert_eq!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::ReadFromFuture {
                read: r,
                write: OpId(1)
            })
        );
    }

    #[test]
    fn condition4_new_old_inversion() {
        // This is exactly the violation the paper's lower-bound proof
        // exhibits in prC: a read returns 1, a subsequent read returns ⊥.
        let mut h = History::new();
        let w = h.invoke_write(0, 1, 0); // incomplete write(1)
        let _ = w;
        let r1 = complete_read(&mut h, 1, RegValue::Val(1), 2, 4);
        let r2 = complete_read(&mut h, 2, RegValue::Bottom, 5, 7);
        assert_eq!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::NewOldInversion {
                first_read: r1,
                first_index: 1,
                second_read: r2,
                second_index: 0
            })
        );
    }

    #[test]
    fn concurrent_reads_may_disagree_in_any_order() {
        // Two overlapping reads during a write may return different values
        // without violating condition 4.
        let mut h = History::new();
        let w = h.invoke_write(0, 1, 0);
        h.respond(w, None, 100);
        complete_read(&mut h, 1, RegValue::Val(1), 10, 50);
        complete_read(&mut h, 2, RegValue::Bottom, 20, 60);
        assert!(check_swmr_atomicity(&h).is_ok());
    }

    #[test]
    fn incomplete_write_value_may_be_read() {
        let mut h = History::new();
        h.invoke_write(0, 7, 0); // never completes
        complete_read(&mut h, 1, RegValue::Val(7), 5, 9);
        assert!(check_swmr_atomicity(&h).is_ok());
    }

    #[test]
    fn incomplete_read_is_ignored() {
        let mut h = History::new();
        complete_write(&mut h, 1, 0, 1);
        h.invoke_read(1, 2); // pending forever
        assert!(check_swmr_atomicity(&h).is_ok());
    }

    #[test]
    fn duplicate_written_values_are_rejected() {
        let mut h = History::new();
        complete_write(&mut h, 5, 0, 1);
        complete_write(&mut h, 5, 2, 3);
        assert_eq!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::DuplicateWrittenValue { value: 5 })
        );
    }

    #[test]
    fn overlapping_writes_are_rejected() {
        let mut h = History::new();
        let w1 = h.invoke_write(0, 1, 0);
        h.respond(w1, None, 10);
        let _w2 = h.invoke_write(0, 2, 5);
        assert!(matches!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::MalformedWrites { .. })
        ));
    }

    #[test]
    fn incomplete_write_must_be_last() {
        let mut h = History::new();
        h.invoke_write(0, 1, 0); // incomplete
        complete_write(&mut h, 2, 5, 6);
        assert!(matches!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::MalformedWrites { .. })
        ));
    }

    #[test]
    fn multiple_writer_procs_are_rejected() {
        let mut h = History::new();
        let w1 = h.invoke_write(0, 1, 0);
        h.respond(w1, None, 1);
        let w2 = h.invoke_write(3, 2, 2);
        h.respond(w2, None, 3);
        assert!(matches!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::MalformedWrites { .. })
        ));
    }

    #[test]
    fn chain_of_reads_must_be_monotone() {
        let mut h = History::new();
        complete_write(&mut h, 1, 0, 1);
        complete_write(&mut h, 2, 2, 3);
        // write(3) stays concurrent with all the reads below, so reads may
        // return val_2 or val_3 individually — but not regress across reads.
        let w3 = h.invoke_write(0, 3, 4);
        h.respond(w3, None, 100);
        complete_read(&mut h, 1, RegValue::Val(3), 6, 7);
        complete_read(&mut h, 2, RegValue::Val(3), 8, 9);
        assert!(check_swmr_atomicity(&h).is_ok());

        // Regressing to val_2 afterwards is an inversion.
        complete_read(&mut h, 1, RegValue::Val(2), 10, 11);
        assert!(matches!(
            check_swmr_atomicity(&h),
            Err(AtomicityViolation::NewOldInversion { .. })
        ));
    }

    #[test]
    fn violation_messages_are_informative() {
        let violations: Vec<AtomicityViolation> = vec![
            AtomicityViolation::DuplicateWrittenValue { value: 5 },
            AtomicityViolation::MalformedWrites { detail: "x".into() },
            AtomicityViolation::UnwrittenValue {
                read: OpId(1),
                value: RegValue::Val(9),
            },
            AtomicityViolation::MissedPrecedingWrite {
                read: OpId(1),
                preceding_write_index: 2,
                returned_index: 1,
            },
            AtomicityViolation::ReadFromFuture {
                read: OpId(1),
                write: OpId(0),
            },
            AtomicityViolation::NewOldInversion {
                first_read: OpId(1),
                first_index: 1,
                second_read: OpId(2),
                second_index: 0,
            },
        ];
        for v in violations {
            assert!(!format!("{v}").is_empty());
        }
    }
}
