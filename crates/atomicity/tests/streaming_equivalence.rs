//! Property suite: the streaming and parallel checkers emit verdicts
//! byte-identical (by stable code) to the batch checkers, on random
//! histories with pending operations, crashes, duplicate and unwritten
//! values, overlapping writes, and both single- and multi-writer
//! contracts — at every worker count.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fastreg_atomicity::history::{History, RegValue};
use fastreg_atomicity::linearizability::check_linearizable;
use fastreg_atomicity::regularity::check_swmr_regularity;
use fastreg_atomicity::streaming::{
    check_swmr_atomicity_parallel, check_swmr_regularity_parallel, stream_lin_verdict,
    stream_regularity_verdict, stream_swmr_verdict,
};
use fastreg_atomicity::swmr::check_swmr_atomicity;
use fastreg_atomicity::verdict::Verdict;

const SWMR_CASES: u64 = 192;
const LIN_CASES: u64 = 64;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One synthesized operation, pre-recording.
struct GenOp {
    proc: u32,
    /// `Some(v)` writes `v`; `None` reads.
    write: Option<u64>,
    inv: u64,
    /// `None`: the op never responds (crashed client / still pending).
    resp: Option<u64>,
    /// What a responding read returns (`None` models a crashed response
    /// carrying no value).
    returned: Option<RegValue>,
}

/// Builds a history from generated ops the way a live run records them:
/// invocations in time order, responses as they happen.
fn record(ops: Vec<GenOp>) -> History {
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| (ops[i].inv, i));
    let mut h = History::with_capacity(ops.len());
    let mut responses: Vec<(u64, usize, fastreg_atomicity::history::OpId)> = Vec::new();
    for &i in &order {
        let op = &ops[i];
        let id = match op.write {
            Some(v) => h.invoke_write(op.proc, v, op.inv),
            None => h.invoke_read(op.proc, op.inv),
        };
        if let Some(r) = op.resp {
            responses.push((r, i, id));
        }
    }
    responses.sort();
    for (r, i, id) in responses {
        let returned = if ops[i].write.is_some() {
            None
        } else {
            ops[i].returned
        };
        h.respond(id, returned, r);
    }
    h
}

/// A random SWMR-shaped history: one (usually) sequential writer,
/// several readers, reads drawn from the whole write set (past and
/// future), plus low-probability corruption — duplicate values,
/// overlapping writes, a second writing process, unwritten returns,
/// crashes.
fn gen_swmr(seed: u64) -> History {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let n_ops = rng.gen_range(4..=60usize);
    let n_readers = rng.gen_range(1..=3u32);
    let mut t = 0u64;
    let mut next_value = 1u64;
    let mut values: Vec<u64> = Vec::new();
    let mut writer_free = 0u64;
    let mut reader_free = vec![0u64; n_readers as usize];
    let mut ops: Vec<GenOp> = Vec::new();
    for _ in 0..n_ops {
        t += rng.gen_range(0..3);
        if rng.gen_bool(0.35) {
            // A write. Rarely: from a second process, or overlapping the
            // previous write, or duplicating an old value.
            let proc = if rng.gen_bool(0.03) { 99 } else { 0 };
            let inv = if rng.gen_bool(0.05) {
                t
            } else {
                t.max(writer_free)
            };
            let value = if rng.gen_bool(0.04) && !values.is_empty() {
                values[rng.gen_range(0..values.len())]
            } else {
                next_value += 1;
                next_value
            };
            values.push(value);
            let resp = (!rng.gen_bool(0.07)).then(|| inv + rng.gen_range(0..6));
            writer_free = resp.map_or(writer_free, |r| r + 1).max(writer_free);
            ops.push(GenOp {
                proc,
                write: Some(value),
                inv,
                resp,
                returned: None,
            });
        } else {
            let reader = rng.gen_range(0..n_readers);
            let inv = t.max(reader_free[reader as usize]);
            let resp = (!rng.gen_bool(0.07)).then(|| inv + rng.gen_range(0..6));
            reader_free[reader as usize] = resp.map_or(reader_free[reader as usize], |r| r + 1);
            ops.push(GenOp {
                proc: reader + 1,
                write: None,
                inv,
                resp,
                returned: gen_return(&mut rng, &values),
            });
        }
    }
    record(ops)
}

/// What a read comes back with: usually some written value (past or
/// future — the generator draws from the full write list, so stale,
/// fresh, future and inverted reads all occur), sometimes ⊥, rarely an
/// unwritten value or a valueless response.
fn gen_return(rng: &mut StdRng, values: &[u64]) -> Option<RegValue> {
    if rng.gen_bool(0.03) {
        return None;
    }
    Some(if values.is_empty() || rng.gen_bool(0.15) {
        RegValue::Bottom
    } else if rng.gen_bool(0.06) {
        RegValue::Val(1_000_000 + rng.gen_range(0..100))
    } else {
        RegValue::Val(values[rng.gen_range(0..values.len())])
    })
}

/// A random MWMR history, capped at 30 ops so the batch Wing–Gong
/// oracle stays within its 64-bit budget and the comparison is exact.
fn gen_mwmr(seed: u64) -> History {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    let n_ops = rng.gen_range(3..=30usize);
    let n_writers = rng.gen_range(2..=3u32);
    let n_readers = rng.gen_range(1..=3u32);
    let mut t = 0u64;
    let mut next_value = 1u64;
    let mut values: Vec<u64> = Vec::new();
    let mut free = vec![0u64; (n_writers + n_readers) as usize];
    let mut ops: Vec<GenOp> = Vec::new();
    for _ in 0..n_ops {
        t += rng.gen_range(0..4);
        let is_write = rng.gen_bool(0.4);
        let proc = if is_write {
            rng.gen_range(0..n_writers)
        } else {
            n_writers + rng.gen_range(0..n_readers)
        };
        let inv = t.max(free[proc as usize]);
        let resp = (!rng.gen_bool(0.10)).then(|| inv + rng.gen_range(0..6));
        free[proc as usize] = resp.map_or(free[proc as usize], |r| r + 1);
        if is_write {
            next_value += 1;
            values.push(next_value);
            ops.push(GenOp {
                proc,
                write: Some(next_value),
                inv,
                resp,
                returned: None,
            });
        } else {
            ops.push(GenOp {
                proc,
                write: None,
                inv,
                resp,
                returned: gen_return(&mut rng, &values),
            });
        }
    }
    record(ops)
}

#[test]
fn swmr_streaming_and_parallel_match_batch_on_random_histories() {
    let mut atomic_codes: BTreeSet<String> = BTreeSet::new();
    let mut regular_codes: BTreeSet<String> = BTreeSet::new();
    for case in 0..SWMR_CASES {
        let h = gen_swmr(case);
        let batch_atomic = Verdict::from_atomicity(&check_swmr_atomicity(&h));
        let batch_regular = Verdict::from_regularity(&check_swmr_regularity(&h));
        atomic_codes.insert(batch_atomic.code().to_string());
        regular_codes.insert(batch_regular.code().to_string());

        assert_eq!(
            stream_swmr_verdict(&h),
            batch_atomic,
            "case {case}: streaming atomicity diverged\n{}",
            h.render()
        );
        assert_eq!(
            stream_regularity_verdict(&h),
            batch_regular,
            "case {case}: streaming regularity diverged\n{}",
            h.render()
        );
        for threads in WORKER_COUNTS {
            assert_eq!(
                check_swmr_atomicity_parallel(&h, threads),
                batch_atomic,
                "case {case}, {threads} workers: parallel atomicity diverged\n{}",
                h.render()
            );
            assert_eq!(
                check_swmr_regularity_parallel(&h, threads),
                batch_regular,
                "case {case}, {threads} workers: parallel regularity diverged\n{}",
                h.render()
            );
        }
    }
    // The generator must actually exercise the code space, or the
    // equivalence above is vacuous.
    assert!(
        atomic_codes.len() >= 5,
        "atomicity suite too tame: only {atomic_codes:?}"
    );
    assert!(
        atomic_codes.contains("clean"),
        "no clean case in {atomic_codes:?}"
    );
    assert!(
        regular_codes.len() >= 3,
        "regularity suite too tame: only {regular_codes:?}"
    );
}

#[test]
fn lin_streaming_matches_batch_on_random_mwmr_histories() {
    let mut codes: BTreeSet<String> = BTreeSet::new();
    for case in 0..LIN_CASES {
        let h = gen_mwmr(case);
        let batch = Verdict::from_linearizable(&check_linearizable(&h));
        codes.insert(batch.code().to_string());
        assert_eq!(
            stream_lin_verdict(&h),
            batch,
            "case {case}: streaming linearizability diverged\n{}",
            h.render()
        );
    }
    assert!(
        codes.contains("clean") && codes.contains("not-linearizable"),
        "lin suite too tame: only {codes:?}"
    );
}
