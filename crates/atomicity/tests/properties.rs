//! Property-based cross-validation of the checkers.
//!
//! The specialized four-condition SWMR checker must agree with the
//! independent Wing–Gong linearizability oracle on arbitrary single-writer
//! histories (wherever the SWMR checker's preconditions hold), and the
//! implication chain atomic ⇒ regular must hold.

use proptest::prelude::*;

use fastreg_atomicity::history::{History, RegValue};
use fastreg_atomicity::linearizability::check_linearizable;
use fastreg_atomicity::regularity::check_swmr_regularity;
use fastreg_atomicity::swmr::{check_swmr_atomicity, AtomicityViolation};

/// A generated single-writer history: sequential writes of distinct
/// values, then reads with arbitrary intervals and returns.
#[derive(Clone, Debug)]
struct GenHistory {
    /// (gap_before, duration, completes) per write.
    writes: Vec<(u64, u64, bool)>,
    /// (proc, invoke_at, duration, returned_index) per read; the index is
    /// reduced modulo (writes + 1), 0 meaning ⊥.
    reads: Vec<(u32, u64, u64, u64)>,
}

fn gen_history() -> impl Strategy<Value = GenHistory> {
    (
        proptest::collection::vec((0u64..4, 1u64..4, any::<bool>()), 0..4),
        proptest::collection::vec((1u32..4, 0u64..30, 0u64..6, any::<u64>()), 0..5),
    )
        .prop_map(|(writes, reads)| GenHistory { writes, reads })
}

fn materialize(g: &GenHistory) -> History {
    let mut h = History::new();
    let mut t = 0u64;
    let n = g.writes.len();
    for (i, &(gap, dur, completes)) in g.writes.iter().enumerate() {
        t += gap;
        let id = h.invoke_write(0, (i + 1) as u64, t);
        t += dur;
        // Non-final incomplete writes would break the sequential-writer
        // precondition; only the last write may stay open.
        if completes || i + 1 < n {
            h.respond(id, None, t);
        }
        t += 1;
    }
    for &(proc, inv, dur, ret) in &g.reads {
        let id = h.invoke_read(proc, inv);
        let k = if n == 0 { 0 } else { ret % (n as u64 + 1) };
        let v = if k == 0 {
            RegValue::Bottom
        } else {
            RegValue::Val(k)
        };
        h.respond(id, Some(v), inv + dur);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// SWMR checker ≡ linearizability oracle on generated histories.
    #[test]
    fn swmr_checker_agrees_with_linearizability(g in gen_history()) {
        let h = materialize(&g);
        if h.len() >= 16 {
            return Ok(());
        }
        let lin = check_linearizable(&h).expect("small history");
        match check_swmr_atomicity(&h) {
            Ok(()) => prop_assert!(lin, "swmr-atomic but not linearizable:\n{}", h.render()),
            Err(AtomicityViolation::DuplicateWrittenValue { .. })
            | Err(AtomicityViolation::MalformedWrites { .. }) => {
                // Precondition failures: the oracle may go either way.
            }
            Err(e) => prop_assert!(
                !lin,
                "swmr violation ({e}) but linearizable:\n{}",
                h.render()
            ),
        }
    }

    /// Atomic ⇒ regular, always.
    #[test]
    fn atomic_implies_regular(g in gen_history()) {
        let h = materialize(&g);
        if check_swmr_atomicity(&h).is_ok() {
            prop_assert!(
                check_swmr_regularity(&h).is_ok(),
                "atomic but not regular:\n{}",
                h.render()
            );
        }
    }

    /// Checkers never panic on arbitrary well-formed inputs.
    #[test]
    fn checkers_are_total(g in gen_history()) {
        let h = materialize(&g);
        let _ = check_swmr_atomicity(&h);
        let _ = check_swmr_regularity(&h);
        if h.len() < 16 {
            let _ = check_linearizable(&h);
        }
    }
}
