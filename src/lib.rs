//! # fastreg-suite
//!
//! Facade crate for the `fastreg` workspace — a from-scratch reproduction
//! of *How Fast can a Distributed Atomic Read be?* (Dutta, Guerraoui,
//! Levy, Vukolić; PODC 2004).
//!
//! This crate re-exports the workspace's public surface so that examples
//! and integration tests can use a single import root:
//!
//! ```
//! use fastreg_suite::prelude::*;
//!
//! let config = ClusterConfig::crash_stop(5, 1, 2).expect("valid");
//! assert!(config.fast_feasible());
//! ```
//!
//! See the individual crates for the full documentation:
//!
//! * [`fastreg`] — the paper's protocols (Fig. 2, Fig. 5) and baselines.
//! * [`fastreg_simnet`] — deterministic discrete-event simulation substrate.
//! * [`fastreg_rt`] — the real-threads actor runtime (wall-clock sibling
//!   of the simnet; pick one with
//!   [`Runtime`](fastreg::harness::Runtime)).
//! * [`fastreg_auth`] — simulated digital signatures (§6 substitution).
//! * [`fastreg_atomicity`] — atomicity / linearizability / regularity checkers.
//! * [`fastreg_adversary`] — the lower-bound proofs (§5, §6.2, §7) as code.
//! * [`fastreg_workload`] — workload generators and the experiment harness.
//! * [`fastreg_store`] — the sharded multi-register key–value store.
//! * [`fastreg_obs`] — deterministic tracing + metrics spine (logical
//!   clocks, span records, chrome-trace export, integer-only registry).

#![warn(missing_docs)]

pub use fastreg;
pub use fastreg_adversary;
pub use fastreg_atomicity;
pub use fastreg_auth;
pub use fastreg_obs;
pub use fastreg_rt;
pub use fastreg_simnet;
pub use fastreg_store;
pub use fastreg_workload;

/// Commonly used items, re-exported for examples and tests.
///
/// Protocols are first-class runtime values: enumerate them with
/// [`Registry::all`](fastreg::protocols::registry::Registry::all), parse
/// a [`ProtocolId`](fastreg::protocols::registry::ProtocolId) from a CLI
/// flag, and build a type-erased
/// [`DynCluster`](fastreg::harness::DynCluster) with
/// [`ClusterBuilder`](fastreg::harness::ClusterBuilder):
///
/// ```
/// use fastreg_suite::prelude::*;
///
/// let config = ClusterConfig::crash_stop(5, 1, 2).expect("valid");
/// let mut cluster = ClusterBuilder::new(config)
///     .seed(7)
///     .build(ProtocolId::FastCrash)
///     .expect("feasible");
/// cluster.write_sync(9);
/// assert_eq!(cluster.read(0), RegValue::Val(9));
/// cluster.check_atomic().expect("atomic");
/// ```
pub mod prelude {
    pub use fastreg::config::ClusterConfig;
    pub use fastreg::harness::{
        Abd, Affinity, BuildError, Cluster, ClusterBuilder, DynCluster, FastByz, FastCrash,
        FastRegular, MaxMin, MwmrAbd, MwmrNaiveFast, ProtocolFamily, RegisterOps, Runtime,
        SimControl, SwsrFast, TypedClusterBuilder,
    };
    pub use fastreg::protocols::registry::{
        Contract, ProtocolEntry, ProtocolId, Registry, UnknownProtocol,
    };
    pub use fastreg::threads::ThreadCluster;
    pub use fastreg::types::{ClientId, RegValue, Role, TaggedValue, Timestamp, Value};
    pub use fastreg_atomicity::history::History;
    pub use fastreg_atomicity::linearizability::check_linearizable;
    pub use fastreg_atomicity::regularity::check_swmr_regularity;
    pub use fastreg_atomicity::swmr::check_swmr_atomicity;
    pub use fastreg_simnet::runner::SimConfig;
    pub use fastreg_store::{
        BatchedFrontend, KvOp, KvOpKind, Router, ShardedStore, StoreBuilder, StoreChecker,
        StoreError,
    };
}
