//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided, and only the unbounded-channel slice of its
//! API that the workspace's threaded runtime uses. It is implemented over
//! [`std::sync::mpsc`], which has the same reliable-FIFO semantics for the
//! single-consumer channels used here.

pub mod channel {
    //! Multi-producer, single-consumer unbounded channels.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// The sending half of an unbounded channel. Cloneable across threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, never blocking. Fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}
