//! Offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the surface the fastreg property suites use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, range / tuple /
//! collection / sample strategies, `prop_map` / `prop_flat_map`,
//! [`prop_oneof!`], `any::<T>()`, and the `prop_assert*` family.
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded from
//! the test name, so failures reproduce across runs and machines).
//! `prop_assume!` rejects a case without counting it against the budget.
//! On failure the generated inputs are printed. Shrinking is not
//! implemented — the first failing case is reported as-is.

pub mod test_runner {
    //! Case generation and the test loop.

    /// Deterministic 64-bit generator for case generation (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case hit a failing `prop_assert*`.
        Fail(String),
        /// The case was vetoed by `prop_assume!`; it is retried, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure with a rendered message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Constructs a rejection (assumption not met).
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Configuration for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected (assumed-away) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                max_global_rejects: cases.saturating_mul(16).max(1024),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }

    /// Runs `case` until `config.cases` successes, panicking on failure.
    ///
    /// `case` returns the rendered inputs alongside the case outcome, so a
    /// failure message can show what was generated.
    pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        // Seed from the test name: deterministic, stable across runs.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rejects = 0u32;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            let mut rng = TestRng::from_seed(seed.wrapping_add(attempt));
            attempt += 1;
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest `{test_name}`: too many rejected cases \
                             ({rejects}) before reaching {} successes",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{test_name}` failed after {passed} passing case(s)\n\
                         minimal failing input (no shrinking): {inputs}\n{msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Feeds generated values into `f` to obtain a dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Boxes this strategy behind a trait object.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Boxes one [`prop_oneof!`](crate::prop_oneof) arm, letting inference
    /// unify the arms' value types.
    pub fn union_arm<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
        Box::new(strategy)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy produced by [`any`](crate::arbitrary::any).
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use std::fmt::Debug;
    use std::marker::PhantomData;

    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generates an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of admissible collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo + 1) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with target sizes drawn from `size`.
    ///
    /// As with upstream proptest, duplicate draws may make the realized set
    /// smaller than the drawn target size.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates ordered sets whose elements come from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit collections.

    use std::fmt::Debug;

    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An opaque index, resolved against a length via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this index into `[0, size)`; `size` must be non-zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty domain");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Strategy that picks uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }

    /// Picks uniformly from `options`, which must be non-empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty list");
        Select { options }
    }
}

pub mod prelude {
    //! The standard glob import for property tests.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: `fn name(arg in strategy, ..) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    let rendered = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", $arg));
                        )+
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    (rendered, outcome)
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test without aborting the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($strategy),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u8..4, any::<bool>()), 0..6),
            pick in prop::sample::select(vec![1u8, 2, 3]),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(idx.index(10) < 10);
        }

        #[test]
        fn flat_map_feeds_dependent_strategies(
            pair in (1u32..5).prop_flat_map(|n| (Just(n), 0u32..n))
        ) {
            prop_assert!(pair.1 < pair.0);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(0u8), Just(1u8), 2u8..4]) {
            prop_assert!(x < 4);
        }
    }

    // No `#[test]` attribute: declared by the macro but only invoked (and
    // expected to panic) from `failing_property_panics_with_inputs`.
    proptest! {
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failing_property_panics_with_inputs() {
        always_fails();
    }
}
