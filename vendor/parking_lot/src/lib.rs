//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace vendors the tiny slice of `parking_lot` it actually uses —
//! [`Mutex`] with a non-poisoning `lock` — implemented over [`std::sync`].
//! This keeps the build hermetic (no network registry access) while
//! preserving the call sites unchanged.

use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
///
/// Unlike [`std::sync::Mutex`], [`Mutex::lock`] returns the guard directly:
/// a panic while the lock is held does not poison it for later users.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Poisoning is ignored, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
