//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface the fastreg workspace uses — seedable
//! [`rngs::StdRng`], the [`Rng`] extension trait with `gen_range`/`gen_bool`,
//! and [`seq::IteratorRandom::choose`] — over a deterministic splitmix64 /
//! xorshift generator. Determinism per seed is the property the simulator
//! relies on; statistical quality beyond that is not a goal.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can draw uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Types from which `gen_range` can draw uniformly.
///
/// Blanket-implemented for `Range<T>` / `RangeInclusive<T>` so that untyped
/// integer literals in ranges unify with the destination type, exactly as
/// they do with upstream rand.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods for random generators.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the usual open-interval construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64-seeded xorshift64*).
    ///
    /// API-compatible with `rand::rngs::StdRng` for the workspace's usage;
    /// the stream differs from upstream, which no caller depends on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 so that nearby seeds give unrelated streams.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — full-period for odd state, cheap and portable.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

pub mod distributions {
    //! Non-uniform sampling: the weighted-index distribution.
    //!
    //! Implements the slice of `rand::distributions` the workspace uses —
    //! [`WeightedIndex`] behind the [`Distribution`] trait — so skewed
    //! (hot-key) workloads can be generated without network dependencies.

    use super::{Rng, RngCore};

    /// A distribution of values of type `T` sampled with an [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one value using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Rejected weight vectors for [`WeightedIndex::new`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        /// The weight vector was empty.
        NoItem,
        /// A weight was negative, NaN or infinite.
        InvalidWeight,
        /// Every weight was zero, so no index can ever be drawn.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(match self {
                WeightedError::NoItem => "weighted index over no items",
                WeightedError::InvalidWeight => "weight is negative, NaN or infinite",
                WeightedError::AllWeightsZero => "all weights are zero",
            })
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` with probability proportional to the given
    /// weights (cumulative sums + binary search, O(log n) per draw).
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::distributions::{Distribution, WeightedIndex};
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let dist = WeightedIndex::new([8.0, 1.0, 1.0]).unwrap();
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let mut hits = [0u32; 3];
    /// for _ in 0..1000 {
    ///     hits[dist.sample(&mut rng)] += 1;
    /// }
    /// assert!(hits[0] > hits[1] + hits[2], "index 0 carries 80% of the mass");
    /// ```
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the distribution from finite non-negative weights.
        ///
        /// # Errors
        ///
        /// Returns a [`WeightedError`] if the vector is empty, a weight is
        /// negative / NaN / infinite, or all weights are zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Into<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = w.into();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }

        /// Number of weights (sampled indices are `0..len`).
        pub fn len(&self) -> usize {
            self.cumulative.len()
        }

        /// Returns `true` if the distribution has no items (never: `new`
        /// rejects empty weight vectors — provided for API symmetry).
        pub fn is_empty(&self) -> bool {
            self.cumulative.is_empty()
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            // Uniform draw in [0, total), then the first cumulative sum
            // strictly above it. Zero-weight items are never returned:
            // their cumulative equals their predecessor's, and
            // partition_point skips past ties.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let target = unit * self.total;
            self.cumulative
                .partition_point(|&c| c <= target)
                .min(self.cumulative.len() - 1)
        }
    }

    impl Distribution<usize> for &WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            (**self).sample(rng)
        }
    }

    /// Convenience on [`Rng`]: `rng.sample(&dist)`, as in upstream rand.
    pub trait SampleExt: Rng {
        /// Draws one value from `dist`.
        fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
            dist.sample(self)
        }
    }

    impl<R: Rng + ?Sized> SampleExt for R {}
}

pub mod seq {
    //! Random selection from sequences and iterators.

    use super::{Rng, RngCore};

    /// Extension trait: uniformly choose one element of an iterator.
    pub trait IteratorRandom: Iterator + Sized {
        /// Returns a uniformly chosen element, or `None` if empty.
        ///
        /// Uses reservoir sampling, so it is a single pass.
        fn choose<R: RngCore + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
            let mut chosen = None;
            for (seen, item) in self.enumerate() {
                if rng.gen_range(0..seen + 1) == 0 {
                    chosen = Some(item);
                }
            }
            chosen
        }
    }

    impl<I: Iterator> IteratorRandom for I {}

    /// Extension trait: in-place operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Commonly imported items.
pub mod prelude {
    pub use super::distributions::{Distribution, WeightedIndex};
    pub use super::rngs::StdRng;
    pub use super::seq::{IteratorRandom, SliceRandom};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        use super::distributions::{WeightedError, WeightedIndex};
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([1.0, -2.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([1.0, f64::NAN]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        for e in [
            WeightedError::NoItem,
            WeightedError::InvalidWeight,
            WeightedError::AllWeightsZero,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn weighted_index_is_deterministic_and_in_range() {
        use super::distributions::{Distribution, WeightedIndex};
        let dist = WeightedIndex::new([3.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(dist.len(), 4);
        assert!(!dist.is_empty());
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..256).map(|_| dist.sample(&mut r)).collect::<Vec<_>>()
        };
        let a = draw(9);
        assert_eq!(a, draw(9), "same seed, same stream");
        assert!(a.iter().all(|&i| i < 4));
        assert!(a.iter().all(|&i| i != 2), "zero weight is never drawn");
        // The heaviest index dominates.
        let count = |k| a.iter().filter(|&&i| i == k).count();
        assert!(count(0) > count(1));
        assert!(count(0) > count(3));
        assert!(count(1) > 0 && count(3) > 0);
    }

    #[test]
    fn weighted_index_skews_toward_hot_keys() {
        use super::distributions::{Distribution, WeightedIndex};
        // A Zipf-like weight vector: w_k = 1 / (k+1)^1.1 over 100 keys.
        let weights: Vec<f64> = (0..100)
            .map(|k| 1.0 / f64::powf(k as f64 + 1.0, 1.1))
            .collect();
        let dist = WeightedIndex::new(weights).unwrap();
        let mut r = StdRng::seed_from_u64(4);
        let mut hits = [0u32; 100];
        for _ in 0..10_000 {
            hits[dist.sample(&mut r)] += 1;
        }
        let head: u32 = hits[..10].iter().sum();
        let tail: u32 = hits[90..].iter().sum();
        assert!(
            head > 10 * tail.max(1),
            "the head must be far hotter than the tail (head {head}, tail {tail})"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        use super::seq::IteratorRandom;
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let c = (0..4usize).choose(&mut r).unwrap();
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(std::iter::empty::<u8>().choose(&mut r).is_none());
    }
}
