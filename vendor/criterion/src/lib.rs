//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of criterion's API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with two modes:
//!
//! * **test mode** (`cargo bench -- --test`): every benchmark body runs
//!   exactly once and nothing is timed. This is the CI smoke path.
//! * **measure mode** (plain `cargo bench`): each benchmark is warmed up
//!   briefly, then timed over an adaptive number of iterations, and a
//!   `ns/iter` line is printed. No plotting, no statistics beyond the
//!   mean — enough to eyeball regressions locally without any external
//!   dependency.

// A benchmark harness exists to measure wall time; exempt the vendored
// stub from the workspace-wide `disallowed-methods` mirror of lint D2.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::time::{Duration, Instant};

/// Returns its argument, preventing the optimizer from seeing through it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives one benchmark body.
pub struct Bencher {
    test_mode: bool,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`] in
    /// measure mode.
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Runs `f` — once in test mode, or repeatedly under the timer.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: a few untimed runs so lazy initialization settles.
        let warmup_until = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters = 0u64;
        let warmup_start = Instant::now();
        while Instant::now() < warmup_until || warmup_iters == 0 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        // Measure: aim for ~200ms of work, capped to keep slow benches sane.
        let target = (200_000_000.0 / per_iter.max(1.0)).ceil() as u64;
        let iters = target.clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<D: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            mean_ns: None,
        };
        f(&mut b);
        if self.criterion.test_mode {
            println!("test {full} ... ok");
        } else {
            match b.mean_ns {
                Some(ns) => println!("{full}: {ns:.0} ns/iter"),
                None => println!("{full}: no measurement (iter was never called)"),
            }
        }
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards everything after `--` plus a `--bench`
        // flag; anything that is not a recognized flag acts as a substring
        // filter on benchmark names, like the real harness.
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Registers and immediately runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.matches(name) {
            let mut b = Bencher {
                test_mode: self.test_mode,
                mean_ns: None,
            };
            f(&mut b);
            if self.test_mode {
                println!("test {name} ... ok");
            } else if let Some(ns) = b.mean_ns {
                println!("{name}: {ns:.0} ns/iter");
            }
        }
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("read", "S5").to_string(), "read/S5");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn test_mode_runs_the_body_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("wanted".into()),
        };
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.bench_function("other", |b| b.iter(|| runs += 1));
        g.bench_function("wanted", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_records_a_mean() {
        let mut b = Bencher {
            test_mode: false,
            mean_ns: None,
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.mean_ns.is_some());
    }
}
