//! Domain scenario: a signed audit-log head under Byzantine storage.
//!
//! A compliance service (the writer) maintains the digest of the latest
//! audit batch in a replicated register; auditors (readers) fetch it.
//! One storage replica is compromised and actively lies — replaying stale
//! heads, inflating its `seen` evidence, even attempting to forge newer
//! digests. The Fig. 5 protocol (§6) keeps every auditor read correct in
//! a single round trip, because the writer signs each (timestamp, value)
//! record and the predicate discounts unauthenticated evidence.
//!
//! Run with: `cargo run --example byzantine_audit`

use fastreg_suite::fastreg::byz::{Forger, SeenInflater, StaleReplayer};
use fastreg_suite::fastreg::harness::ByzCtx;
use fastreg_suite::fastreg_simnet::automaton::Automaton;
use fastreg_suite::fastreg_simnet::id::ProcessId;
use fastreg_suite::prelude::*;

type ByzMsg = fastreg_suite::fastreg::protocols::fast_byz::Msg;
type MakeServer = fn(
    &ClusterConfig,
    fastreg_suite::fastreg::layout::Layout,
    &mut ByzCtx,
) -> Box<dyn Automaton<Msg = ByzMsg>>;

fn main() {
    // 6 replicas, at most 1 faulty and it may be malicious, 1 auditor
    // client pool: 6 > (1+2)·1 + (1+1)·1 = 5 → fast is possible.
    let cfg = ClusterConfig::byzantine(6, 1, 1, 1).expect("valid");
    assert!(cfg.fast_feasible());
    println!(
        "S = {}, t = {}, b = {}, R = {} → fast Byzantine register feasible",
        cfg.s, cfg.t, cfg.b, cfg.r
    );

    let attacks: Vec<(&str, MakeServer)> = vec![
        ("stale replayer", |c, _l, _ctx| {
            Box::new(StaleReplayer::new(c))
        }),
        ("seen inflater", |c, l, ctx| {
            Box::new(SeenInflater::new(
                c,
                l,
                ctx.verifier.clone(),
                ctx.writer_key,
            ))
        }),
        ("signature forger", |_c, _l, _ctx| Box::new(Forger::new())),
    ];

    for (name, make) in attacks {
        println!("\n== replica s1 compromised: {name} ==");
        // The typed builder keeps static dispatch: planting a malicious
        // server and inspecting the reader both need the concrete types.
        let mut cluster: Cluster<FastByz> = ClusterBuilder::new(cfg)
            .sim(SimConfig::default().with_seed(7))
            .typed()
            .server_factory(|c, l, index, ctx| {
                if index == 0 {
                    make(c, l, ctx)
                } else {
                    FastByz::server(c, l, index, ctx)
                }
            })
            .build();

        // Publish three audit heads; the auditor fetches after each.
        for batch in 1..=3u64 {
            let digest = 0xABC0 + batch;
            cluster.write_sync(digest);
            let fetched = cluster.read(0);
            println!("  published batch head {digest:#x}; auditor fetched {fetched}");
            assert_eq!(
                fetched,
                RegValue::Val(digest),
                "auditor must see the newest head"
            );
        }
        cluster.check_atomic().expect("audit trail stays atomic");

        // How much malicious traffic did the auditor have to discard?
        let reader_addr = cluster.layout.reader(0);
        let discarded = cluster
            .world
            .with_actor::<fastreg_suite::fastreg::protocols::fast_byz::Reader, _, _>(
                reader_addr,
                |r| r.discarded_acks,
            )
            .expect("reader exists");
        println!("  auditor discarded {discarded} provably-malicious acks; history atomic ✓");
    }

    // The same system with one *more* reader pool would cross the bound:
    let crowded = ClusterConfig::byzantine(6, 1, 1, 2).expect("valid");
    println!(
        "\nwith R = 2 the bound fails (6 ≤ (2+2)·1 + (2+1)·1 = 7): fast_feasible = {}",
        crowded.fast_feasible()
    );
    let _ = ProcessId::EXTERNAL; // (re-exported API surface demo)
}
