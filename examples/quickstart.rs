//! Quickstart: a fast atomic register in five minutes.
//!
//! Builds the paper's Fig. 2 cluster (5 servers, 1 tolerated crash, 2
//! readers — comfortably inside the `R < S/t − 2` bound), performs a few
//! operations, shows they each took exactly one communication round trip,
//! and checks the recorded history against the paper's atomicity
//! definition.
//!
//! Run with: `cargo run --example quickstart`

use fastreg_suite::prelude::*;

fn main() {
    // 1. Pick a configuration and confirm it admits a fast implementation.
    let cfg = ClusterConfig::crash_stop(5, 1, 2).expect("parameters are consistent");
    println!("S = {}, t = {}, R = {}", cfg.s, cfg.t, cfg.r);
    println!("fast-feasible (R < S/t − 2)? {}", cfg.fast_feasible());
    println!("max readers at this (S, t): {:?}", cfg.max_fast_readers());

    // 2. Assemble the Fig. 2 protocol over the simulated network. The
    //    protocol is a runtime value — parse it from a string, or write
    //    `ProtocolId::FastCrash` directly. Infeasible configurations are
    //    rejected here with a typed error.
    let id: ProtocolId = "fast-crash".parse().expect("registered name");
    let mut cluster = ClusterBuilder::new(cfg)
        .seed(42)
        .build(id)
        .expect("the configuration is inside the fast bound");

    // 3. Do some work.
    cluster.write_sync(100);
    let v = cluster.read(0);
    println!("reader 0 sees {v}");
    assert_eq!(v, RegValue::Val(100));

    cluster.write_sync(200);
    let v = cluster.read(1);
    println!("reader 1 sees {v}");
    assert_eq!(v, RegValue::Val(200));

    // 4. Every operation was fast: exactly one round trip (2 message
    //    delays at unit delay).
    let history = cluster.snapshot();
    for op in history.complete_ops() {
        let latency = op.responded_at.expect("complete") - op.invoked_at;
        assert_eq!(latency, 2, "every operation is one round trip");
    }
    println!(
        "all {} operations completed in one round trip",
        history.len()
    );

    // 5. The history satisfies the paper's §3.1 atomicity conditions.
    check_swmr_atomicity(&history).expect("atomic");
    println!("history verified atomic:\n{}", history.render());
}
