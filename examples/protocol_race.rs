//! The protocol race: every register implementation on one workload.
//!
//! Runs the identical closed-loop workload (300 ops, 20% writes) over the
//! same simulated network for each SWMR protocol in the repository and
//! prints a comparison table: read/write latency percentiles, messages
//! per operation, and which consistency contract was verified.
//!
//! Run with: `cargo run --example protocol_race`

use fastreg_suite::fastreg_simnet::delay::DelayModel;
use fastreg_suite::fastreg_workload::{run_closed_loop, Table, WorkloadReport, WorkloadSpec};
use fastreg_suite::prelude::*;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        n_ops: 300,
        write_fraction: 0.2,
        think_time: 200,
        seed: 33,
    }
}

fn sim() -> SimConfig {
    SimConfig::default()
        .with_seed(12)
        .with_delay(DelayModel::Uniform { lo: 100, hi: 900 })
}

fn row(table: &mut Table, name: &str, contract: &str, report: &WorkloadReport) {
    let reads = report.breakdown.reads.clone().expect("reads ran");
    let writes = report.breakdown.writes.clone().expect("writes ran");
    table.row(vec![
        name.into(),
        format!("{}/{}", reads.p50, reads.p95),
        format!("{}/{}", writes.p50, writes.p95),
        format!("{:.1}", report.messages_per_op()),
        contract.into(),
    ]);
}

fn main() {
    let mut table = Table::new(vec![
        "protocol",
        "read p50/p95 (µs)",
        "write p50/p95 (µs)",
        "msgs/op",
        "verified contract",
    ]);

    // Fast atomic register (Fig. 2) — needs R < S/t − 2.
    let cfg = ClusterConfig::crash_stop(5, 1, 2).expect("valid");
    let mut c: Cluster<FastCrash> = Cluster::with_sim_config(cfg, sim());
    let r = run_closed_loop(&mut c, &spec());
    check_swmr_atomicity(&r.history).expect("atomic");
    row(&mut table, "fast atomic (Fig. 2)", "atomicity", &r);

    // Fast Byzantine register (Fig. 5) at its own feasible configuration.
    let byz_cfg = ClusterConfig::byzantine(6, 1, 1, 1).expect("valid");
    let mut c: Cluster<FastByz> = Cluster::with_sim_config(byz_cfg, sim());
    let r = run_closed_loop(&mut c, &spec());
    check_swmr_atomicity(&r.history).expect("atomic");
    row(&mut table, "fast Byzantine (Fig. 5)", "atomicity (b=1)", &r);

    // ABD at majority resilience.
    let abd_cfg = ClusterConfig::crash_stop(5, 2, 2).expect("valid");
    let mut c: Cluster<Abd> = Cluster::with_sim_config(abd_cfg, sim());
    let r = run_closed_loop(&mut c, &spec());
    check_swmr_atomicity(&r.history).expect("atomic");
    row(&mut table, "ABD (2-round reads)", "atomicity", &r);

    // The decentralized max–min read.
    let mut c: Cluster<MaxMin> = Cluster::with_sim_config(abd_cfg, sim());
    let r = run_closed_loop(&mut c, &spec());
    check_swmr_atomicity(&r.history).expect("atomic");
    row(&mut table, "max–min (§1)", "atomicity", &r);

    // The fast *regular* register: fastest contract money shouldn't buy.
    let mut c: Cluster<FastRegular> = Cluster::with_sim_config(abd_cfg, sim());
    let r = run_closed_loop(&mut c, &spec());
    check_swmr_regularity(&r.history).expect("regular");
    row(&mut table, "fast regular (§8)", "regularity only", &r);

    println!("{table}");
    println!("shape to expect: fast reads ≈ half of ABD's; max–min in between;");
    println!("the regular register matches the fast read but gives up atomicity.");
}
