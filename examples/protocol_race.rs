//! The protocol race: every registered protocol on one workload.
//!
//! Sweeps the runtime protocol registry — no per-protocol code blocks:
//! each entry is built at its canonical feasible configuration through
//! [`ClusterBuilder`], driven through the identical closed-loop workload
//! (300 ops, 20% writes) over the same simulated network via
//! `dyn RegisterOps`, and verified against the consistency contract the
//! registry declares for it.
//!
//! Run with: `cargo run --example protocol_race`

use fastreg_suite::fastreg_simnet::delay::DelayModel;
use fastreg_suite::fastreg_workload::{run_closed_loop, Table, WorkloadSpec};
use fastreg_suite::prelude::*;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        n_ops: 300,
        write_fraction: 0.2,
        think_time: 200,
        seed: 33,
    }
}

fn sim() -> SimConfig {
    SimConfig::default()
        .with_seed(12)
        .with_delay(DelayModel::Uniform { lo: 100, hi: 900 })
}

fn main() {
    let mut table = Table::new(vec![
        "protocol",
        "config",
        "read p50/p95 (µs)",
        "write p50/p95 (µs)",
        "msgs/op",
        "verified contract",
    ]);

    for entry in Registry::all() {
        let id = entry.id;
        let cfg = id.sample_config();
        let mut cluster = ClusterBuilder::new(cfg)
            .sim(sim())
            .build(id)
            .expect("sample configurations are feasible");
        let report = run_closed_loop(&mut cluster, &spec()).expect("feasible deployments quiesce");

        // Verify the contract the registry declares for the protocol.
        // The closed loop only issues writes at writer 0, so even the
        // MWMR deployments produce single-writer histories here.
        let verified = match id.contract() {
            Contract::Atomic => {
                check_swmr_atomicity(&report.history).expect("atomic");
                "atomicity"
            }
            Contract::Regular => {
                check_swmr_regularity(&report.history).expect("regular");
                "regularity only"
            }
            Contract::Unsound => "none — §7 counterexample target",
        };

        let reads = report.breakdown.reads.clone().expect("reads ran");
        let writes = report.breakdown.writes.clone().expect("writes ran");
        table.row(vec![
            id.name().into(),
            format!("S{} t{} b{} R{} W{}", cfg.s, cfg.t, cfg.b, cfg.r, cfg.w),
            format!("{}/{}", reads.p50, reads.p95),
            format!("{}/{}", writes.p50, writes.p95),
            format!("{:.1}", report.messages_per_op()),
            verified.into(),
        ]);
    }

    println!("{table}");
    println!("shape to expect: fast reads ≈ half of ABD's; max–min in between;");
    println!("the regular register matches the fast read but gives up atomicity.");
}
