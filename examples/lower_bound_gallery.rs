//! The proof gallery: watch the paper's lower-bound constructions run.
//!
//! Executes the three impossibility arguments against the real protocol
//! implementations and prints what happened:
//!
//! * §5  (Figs. 1, 3, 4): crash-stop bound `R < S/t − 2`;
//! * §6.2 (Fig. 6): Byzantine bound `S > (R+2)t + (R+1)b`;
//! * §7  (Fig. 7): no fast multi-writer register at all.
//!
//! Run with: `cargo run --example lower_bound_gallery`

use fastreg_suite::fastreg_adversary::crash_lb::run_crash_lb_without_write;
use fastreg_suite::fastreg_adversary::{run_byz_lb, run_crash_lb, run_mwmr_lb};
use fastreg_suite::prelude::*;

fn main() {
    crash_gallery();
    byz_gallery();
    mwmr_gallery();
}

fn crash_gallery() {
    println!("================================================================");
    println!("§5 — crash-stop lower bound, canonical instance S=5, t=1, R=3");
    println!("================================================================");
    let cfg = ClusterConfig::crash_stop(5, 1, 3).expect("valid");
    println!("R = 3 ≥ S/t − 2 = 3 → no fast implementation can exist.\n");

    let out = run_crash_lb(cfg, 0).expect("construction applies");
    println!("block partition B1..B5: {:?}", out.plan.blocks);
    println!("violating run: {}", out.violating_run);
    println!("r_R's read returned      : {}", out.r_last_return);
    println!("r_1's first read returned: {}", out.r1_first_return);
    println!("r_1's second read        : {}", out.r1_second_return);
    println!("checker verdict          : {}\n", out.violation);
    println!("history of the violating run:\n{}", out.history.render());

    // The indistinguishability at the heart of the proof: r1's view is
    // identical in prB/prD, where the write never happened.
    let (first, second) = run_crash_lb_without_write(cfg, 0).expect("construction applies");
    println!("prD (no write at all): r1 returned {first} then {second} — identical views,");
    println!("so no algorithm can have r1 answer differently. QED, executably.\n");
}

fn byz_gallery() {
    println!("================================================================");
    println!("§6.2 — Byzantine lower bound, canonical instance S=7, t=b=1, R=2");
    println!("================================================================");
    let cfg = ClusterConfig::byzantine(7, 1, 1, 2).expect("valid");
    println!("S = 7 ≤ (R+2)t + (R+1)b = 7 → no fast implementation.\n");

    let out = run_byz_lb(cfg, 0).expect("construction applies");
    println!("T-blocks: {:?}", out.plan.t_blocks);
    println!(
        "B-blocks: {:?}  (B3 is two-faced: loses its memory towards r1)",
        out.plan.b_blocks
    );
    println!("violating run: {}", out.violating_run);
    println!("r_R's read returned      : {}", out.r_last_return);
    println!("r_1's second read        : {}", out.r1_second_return);
    println!("checker verdict          : {}\n", out.violation);
    println!("note: the writer SIGNS every timestamp — and it does not help.");
    println!("A malicious server never forges; it merely *hides* evidence.\n");
}

fn mwmr_gallery() {
    println!("================================================================");
    println!("§7 — no fast multi-writer register (W = R = 2, t = 1, S = 4)");
    println!("================================================================");
    let out = run_mwmr_lb(4, 0).expect("construction applies");
    println!("naive one-round MWMR protocol, sequential run¹ (w2 writes 2, then w1 writes 1):");
    println!(
        "  read returned {} but the last write was {} → P1 violated",
        out.sequential_return, out.expected_return
    );
    println!("  linearizable? {}", out.linearizable);
    println!(
        "  two-round MWMR-ABD control on the same pattern: read returned {}",
        out.abd_sequential_return
    );
    println!(
        "  interpolation chain run¹..run^(S+1) returns: {:?}",
        out.chain_returns
    );
    println!("  (a one-round write cannot make the chain switch — which is exactly");
    println!("   how the proof corners every fast MWMR candidate)\n");
    println!("violating history:\n{}", out.history.render());

    let verdict = check_linearizable(&out.history).expect("small history");
    assert!(!verdict);
    println!("independent Wing–Gong oracle agrees: not linearizable.");
}
