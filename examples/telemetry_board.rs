//! Domain scenario: a telemetry head register.
//!
//! One sensor gateway (the single writer) publishes the latest telemetry
//! snapshot id; a small set of dashboard frontends (readers) poll it.
//! This is the classic workload the paper's bound is made for: with few
//! readers, every dashboard refresh costs a single round trip, even while
//! the gateway is publishing and a server replica is down — and the
//! dashboards never see time run backwards (atomicity), unlike with a
//! merely regular register.
//!
//! The network is deliberately unfriendly: heavy-tailed delays with 5%
//! stragglers, one crashed replica, and a gateway that dies mid-publish.
//!
//! Run with: `cargo run --example telemetry_board`

use fastreg_suite::fastreg_simnet::delay::DelayModel;
use fastreg_suite::fastreg_workload::{run_closed_loop, WorkloadSpec};
use fastreg_suite::prelude::*;

fn main() {
    // 7 replicas, tolerate 1 fault, 4 dashboards: 4 < 7/1 − 2 → fast.
    let cfg = ClusterConfig::crash_stop(7, 1, 4).expect("valid");
    assert!(cfg.fast_feasible());

    let sim = SimConfig::default()
        .with_seed(2026)
        .with_delay(DelayModel::Spike {
            base: 500,        // 0.5 ms common case
            spike_prob: 0.05, // 5% stragglers
            spike: 10_000,    // 10 ms tail
        });
    let mut cluster = ClusterBuilder::new(cfg)
        .sim(sim)
        .build(ProtocolId::FastCrash)
        .expect("4 < 7/1 - 2: inside the fast bound");

    // One replica is down for the whole scenario. Fault injection is a
    // simulator-only control, so it goes through the SimControl surface.
    cluster
        .sim_control()
        .expect("this scenario runs on the simnet")
        .crash_server(6);
    println!("replica s7 is down; the register does not care (t = 1)");

    // Dashboards poll, the gateway publishes: a 20%-write closed loop.
    let report = run_closed_loop(
        &mut cluster,
        &WorkloadSpec {
            n_ops: 300,
            write_fraction: 0.2,
            think_time: 1_000,
            seed: 7,
        },
    )
    .expect("a feasible deployment with one crash quiesces");

    let reads = report.breakdown.reads.clone().expect("dashboards polled");
    let writes = report.breakdown.writes.clone().expect("gateway published");
    println!(
        "publishes: {} (p50 {} µs, p95 {} µs)",
        writes.count, writes.p50, writes.p95
    );
    println!(
        "refreshes: {} (p50 {} µs, p95 {} µs)",
        reads.count, reads.p50, reads.p95
    );
    println!("messages per operation: {:.1}", report.messages_per_op());

    // The gateway dies mid-publish; dashboards keep refreshing and stay
    // consistent with each other.
    cluster
        .sim_control()
        .expect("this scenario runs on the simnet")
        .arm_writer_crash_after_sends(0, 2);
    cluster.write(999_999);
    for i in 0..cfg.r {
        cluster.read_async(i);
    }
    cluster.settle();
    // A second round of polls, strictly later.
    for i in 0..cfg.r {
        let v = cluster.read(i);
        println!("dashboard {i} final value: {v}");
    }

    check_swmr_atomicity(&cluster.snapshot()).expect("no dashboard ever sees time run backwards");
    println!(
        "atomicity verified across {} operations",
        cluster.snapshot().len()
    );
}
